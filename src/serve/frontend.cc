#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace structura::serve {

using Clock = std::chrono::steady_clock;

std::string ServingCounters::ToString() const {
  std::string out = StrFormat(
      "issued=%llu admitted=%llu shed=%llu not_found=%llu ok=%llu "
      "deadline_exceeded=%llu "
      "cancelled=%llu unavailable=%llu (queued_wait=%llu breaker=%llu) "
      "retries=%llu root_spans=%llu queue_high_water=%llu",
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(shed_queued_wait),
      static_cast<unsigned long long>(breaker_rejected),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(root_spans),
      static_cast<unsigned long long>(queue_high_water));
  if (!breakers.empty()) {
    out += "; breakers:";
    for (const auto& [op, state] : breakers) {
      out += StrFormat(" %s(%s)", op.c_str(), state.c_str());
    }
  }
  return out;
}

Frontend::Frontend(Options options)
    : options_(options),
      registry_(options.registry != nullptr
                    ? options.registry
                    : &obs::MetricsRegistry::Default()),
      issued_(registry_->GetCounter("serve.requests.issued")),
      admitted_(registry_->GetCounter("serve.requests.admitted")),
      shed_(registry_->GetCounter("serve.requests.shed")),
      not_found_(registry_->GetCounter("serve.requests.not_found")),
      ok_(registry_->GetCounter("serve.requests.ok")),
      deadline_exceeded_(
          registry_->GetCounter("serve.requests.deadline_exceeded")),
      cancelled_(registry_->GetCounter("serve.requests.cancelled")),
      unavailable_(registry_->GetCounter("serve.requests.unavailable")),
      shed_queued_wait_(
          registry_->GetCounter("serve.requests.shed_queued_wait")),
      breaker_rejected_(
          registry_->GetCounter("serve.requests.breaker_rejected")),
      retries_(registry_->GetCounter("serve.requests.retries")),
      root_spans_(registry_->GetCounter("serve.spans.root")),
      request_latency_(
          registry_->GetHistogram("serve.request.latency_ns")),
      queue_wait_(registry_->GetHistogram("serve.queue.wait_ns")),
      pool_(options.num_threads,
            options.shed_enabled ? options.max_queue_depth : 0) {
  base_ = RegistryValues();
  pool_.PublishMetrics("serve");
}

void Frontend::RegisterOperator(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto [it, inserted] =
      ops_.emplace(name, std::make_unique<Operator>(options_.breaker));
  if (inserted) op_order_.push_back(name);
  it->second->handler = std::move(handler);
  it->second->span_name = obs::InternName("serve." + name);
}

std::future<Status> Frontend::Submit(const std::string& op_name,
                                     RequestContext ctx) {
  issued_->Increment();
  if (ctx.trace_id == 0) ctx.trace_id = obs::NextTraceId();
  auto done = std::make_shared<std::promise<Status>>();
  std::future<Status> fut = done->get_future();

  Operator* op = nullptr;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    auto it = ops_.find(op_name);
    if (it != ops_.end()) op = it->second.get();  // node-stable address
  }
  if (op == nullptr) {
    not_found_->Increment();
    done->set_value(Status::NotFound("no operator " + op_name));
    return fut;
  }

  Clock::time_point enqueued_at = Clock::now();
  auto task = [this, op, op_name, ctx = std::move(ctx), enqueued_at,
               done]() { Execute(op, op_name, ctx, enqueued_at, done.get()); };
  bool accepted;
  if (options_.shed_enabled) {
    accepted = pool_.TryPost(std::move(task));
  } else {
    pool_.Post(std::move(task));
    accepted = true;
  }
  if (!accepted) {
    // Shed at admission: the caller learns *now* instead of waiting
    // behind a queue that is already past its latency budget.
    shed_->Increment();
    done->set_value(Status::Unavailable("shed: queue full"));
    return fut;
  }
  admitted_->Increment();
  return fut;
}

Status Frontend::Call(const std::string& op, RequestContext ctx) {
  return Submit(op, std::move(ctx)).get();
}

void Frontend::WaitIdle() { pool_.WaitIdle(); }

void Frontend::Resolve(std::promise<Status>* done, Status s) {
  switch (s.code()) {
    case StatusCode::kOk:
      ok_->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_->Increment();
      break;
    case StatusCode::kCancelled:
      cancelled_->Increment();
      break;
    case StatusCode::kUnavailable:
      unavailable_->Increment();
      break;
    default:
      break;
  }
  done->set_value(std::move(s));
}

void Frontend::Execute(Operator* op, const std::string& op_name,
                       const RequestContext& ctx,
                       Clock::time_point enqueued_at,
                       std::promise<Status>* done) {
  // Exactly one root span per admitted request: every Execute() runs
  // under this scope, including the queued-too-long shed path below.
  obs::TraceRequestScope root(ctx.trace_id, op->span_name);
  root_spans_->Increment();
  auto dequeued_at = Clock::now();
  queue_wait_->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                               dequeued_at - enqueued_at)
                               .count())));
  // Request latency spans queue wait + every attempt, recorded on every
  // resolution path.
  struct LatencyRecorder {
    obs::Histogram* h;
    Clock::time_point from;
    ~LatencyRecorder() {
      h->Record(static_cast<uint64_t>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - from)
                 .count())));
    }
  } latency{request_latency_, enqueued_at};

  if (options_.shed_enabled) {
    auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
        dequeued_at - enqueued_at);
    if (static_cast<uint64_t>(std::max<int64_t>(0, waited.count())) >
        options_.max_queue_wait_ms) {
      // Running a request whose latency budget was spent waiting would
      // only add load exactly when the system is already behind.
      shed_queued_wait_->Increment();
      Resolve(done, Status::Unavailable("shed: queued too long"));
      return;
    }
  }

  Rng rng(options_.seed ^ (ctx.id * 0x9E3779B97F4A7C15ULL));
  uint32_t budget = ctx.retry_budget;
  uint32_t attempt = 0;
  while (true) {
    if (Status s = ctx.interrupt.Check(); !s.ok()) {
      Resolve(done, std::move(s));
      return;
    }
    uint64_t admission = CircuitBreaker::kCurrentAdmission;
    if (!op->breaker.Allow(&admission)) {
      breaker_rejected_->Increment();
      Resolve(done, Status::Unavailable("breaker open for " + op_name));
      return;
    }
    ++attempt;
    // Failpoint-injected operator errors land here, before the real
    // handler — the hook tests and the chaos harness use to drive
    // breakers and retry paths deterministically.
    Status st = MaybeFail("serve.op");
    if (st.ok()) st = MaybeFail("serve.op." + op_name);
    if (st.ok()) {
      TRACE_SPAN("serve.handler");
      st = op->handler(ctx);
    }
    if (st.ok()) {
      op->breaker.RecordSuccess(admission);
      Resolve(done, Status::OK());
      return;
    }
    if (st.code() == StatusCode::kCancelled) {
      // Client intent, not operator health: release the (possible)
      // probe slot without recording evidence either way — a cancelled
      // probe must not re-close a half-open breaker.
      op->breaker.ReleaseProbe(admission);
      Resolve(done, std::move(st));
      return;
    }
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // Slowness IS a health signal — count it against the operator,
      // but don't retry: the budget is gone.
      op->breaker.RecordFailure(admission);
      Resolve(done, std::move(st));
      return;
    }
    op->breaker.RecordFailure(admission);
    if (budget == 0) {
      Resolve(done, Status::Unavailable(StrFormat(
                        "%s failed after %u attempts: %s", op_name.c_str(),
                        attempt, st.message().c_str())));
      return;
    }
    --budget;
    retries_->Increment();
    // Jittered exponential backoff, clipped to the remaining deadline.
    double base = static_cast<double>(options_.retry_base_ms);
    for (uint32_t i = 1; i < attempt; ++i) base *= options_.retry_multiplier;
    base = std::min(base, static_cast<double>(options_.retry_max_ms));
    auto backoff_ms =
        static_cast<uint64_t>(base * (0.5 + 0.5 * rng.NextDouble()));
    backoff_ms = std::min(backoff_ms, ctx.interrupt.deadline.RemainingMillis());
    if (backoff_ms > 0) {
      TRACE_SPAN("serve.retry_backoff");
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }
}

ServingCounters Frontend::RegistryValues() const {
  ServingCounters c;
  c.issued = issued_->Value();
  c.admitted = admitted_->Value();
  c.shed = shed_->Value();
  c.not_found = not_found_->Value();
  c.ok = ok_->Value();
  c.deadline_exceeded = deadline_exceeded_->Value();
  c.cancelled = cancelled_->Value();
  c.unavailable = unavailable_->Value();
  c.shed_queued_wait = shed_queued_wait_->Value();
  c.breaker_rejected = breaker_rejected_->Value();
  c.retries = retries_->Value();
  c.root_spans = root_spans_->Value();
  return c;
}

ServingCounters Frontend::Counters() const {
  ServingCounters c = RegistryValues();
  c.issued -= base_.issued;
  c.admitted -= base_.admitted;
  c.shed -= base_.shed;
  c.not_found -= base_.not_found;
  c.ok -= base_.ok;
  c.deadline_exceeded -= base_.deadline_exceeded;
  c.cancelled -= base_.cancelled;
  c.unavailable -= base_.unavailable;
  c.shed_queued_wait -= base_.shed_queued_wait;
  c.breaker_rejected -= base_.breaker_rejected;
  c.retries -= base_.retries;
  c.root_spans -= base_.root_spans;
  c.queue_high_water = pool_.stats().queue_high_water;
  std::lock_guard<std::mutex> lock(ops_mutex_);
  for (const std::string& name : op_order_) {
    c.breakers.emplace_back(
        name, CircuitBreaker::StateName(ops_.at(name)->breaker.state()));
  }
  return c;
}

CircuitBreaker::State Frontend::BreakerState(const std::string& op) const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto it = ops_.find(op);
  return it == ops_.end() ? CircuitBreaker::State::kClosed
                          : it->second->breaker.state();
}

}  // namespace structura::serve
