#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/random.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace structura::serve {
namespace {

/// Under a critical subsystem verdict, one request in this many still
/// attempts the primary operator (the rest go straight to the
/// fallback). See the canary comment in Execute().
constexpr uint64_t kCriticalCanaryEvery = 8;

}  // namespace

std::string ServingCounters::ToString() const {
  std::string out = StrFormat(
      "issued=%llu admitted=%llu shed=%llu (brownout=%llu) not_found=%llu "
      "ok=%llu (degraded=%llu) deadline_exceeded=%llu "
      "cancelled=%llu unavailable=%llu (queued_wait=%llu breaker=%llu "
      "read_only=%llu) "
      "fallback_served=%llu retries=%llu root_spans=%llu queue_high_water=%llu",
      static_cast<unsigned long long>(issued),
      static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(shed_brownout),
      static_cast<unsigned long long>(not_found),
      static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(degraded_answers),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(unavailable),
      static_cast<unsigned long long>(shed_queued_wait),
      static_cast<unsigned long long>(breaker_rejected),
      static_cast<unsigned long long>(read_only_refused),
      static_cast<unsigned long long>(fallback_served),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(root_spans),
      static_cast<unsigned long long>(queue_high_water));
  out += "; tiers:";
  for (size_t t = 0; t < kNumPriorities; ++t) {
    out += StrFormat(" %s(issued=%llu admitted=%llu shed=%llu nf=%llu)",
                     PriorityName(static_cast<Priority>(t)),
                     static_cast<unsigned long long>(tiers[t].issued),
                     static_cast<unsigned long long>(tiers[t].admitted),
                     static_cast<unsigned long long>(tiers[t].shed),
                     static_cast<unsigned long long>(tiers[t].not_found));
  }
  if (!breakers.empty()) {
    out += "; breakers:";
    for (const auto& [op, state] : breakers) {
      out += StrFormat(" %s(%s)", op.c_str(), state.c_str());
    }
  }
  return out;
}

Frontend::Frontend(Options options)
    : options_(options),
      clock_(structura::Clock::OrReal(options.clock)),
      registry_(options.registry != nullptr
                    ? options.registry
                    : &obs::MetricsRegistry::Default()),
      issued_(registry_->GetCounter("serve.requests.issued")),
      admitted_(registry_->GetCounter("serve.requests.admitted")),
      shed_(registry_->GetCounter("serve.requests.shed")),
      not_found_(registry_->GetCounter("serve.requests.not_found")),
      ok_(registry_->GetCounter("serve.requests.ok")),
      deadline_exceeded_(
          registry_->GetCounter("serve.requests.deadline_exceeded")),
      cancelled_(registry_->GetCounter("serve.requests.cancelled")),
      unavailable_(registry_->GetCounter("serve.requests.unavailable")),
      shed_queued_wait_(
          registry_->GetCounter("serve.requests.shed_queued_wait")),
      breaker_rejected_(
          registry_->GetCounter("serve.requests.breaker_rejected")),
      read_only_refused_(
          registry_->GetCounter("serve.requests.read_only_refused")),
      shed_brownout_(registry_->GetCounter("serve.requests.shed_brownout")),
      fallback_served_(registry_->GetCounter("serve.requests.fallback_served")),
      degraded_answers_(
          registry_->GetCounter("serve.requests.degraded_answers")),
      retries_(registry_->GetCounter("serve.requests.retries")),
      root_spans_(registry_->GetCounter("serve.spans.root")),
      request_latency_(
          registry_->GetHistogram("serve.request.latency_ns")),
      queue_wait_(registry_->GetHistogram("serve.queue.wait_ns")),
      policy_(options.brownout, options.health),
      pool_(options.num_threads,
            options.shed_enabled ? options.max_queue_depth : 0) {
  for (size_t t = 0; t < kNumPriorities; ++t) {
    const std::string prefix = std::string("serve.requests.tier.") +
                               PriorityName(static_cast<Priority>(t));
    tier_issued_[t] = registry_->GetCounter(prefix + ".issued");
    tier_admitted_[t] = registry_->GetCounter(prefix + ".admitted");
    tier_shed_[t] = registry_->GetCounter(prefix + ".shed");
    tier_not_found_[t] = registry_->GetCounter(prefix + ".not_found");
  }
  base_ = RegistryValues();
  pool_.PublishMetrics("serve");
  if (options_.health != nullptr) {
    uint64_t id = options_.health->Register(
        "serve", "serve.admission", [this] { return AdmissionSignal(); });
    std::lock_guard<std::mutex> lock(ops_mutex_);
    health_registrations_["serve"] = id;
  }
}

Frontend::~Frontend() {
  // Detach every health registration FIRST, before any member is
  // destroyed: Detach blocks until no evaluation is in flight, so after
  // this loop a concurrent watchdog can no longer run BreakerSignal /
  // AdmissionSignal against soon-to-be-freed breakers and pool state.
  // The ids are collected under ops_mutex_ but Detach runs unlocked —
  // the signal fns themselves take ops_mutex_, so detaching while
  // holding it would deadlock against an in-flight evaluation.
  if (options_.health != nullptr) {
    std::vector<uint64_t> ids;
    {
      std::lock_guard<std::mutex> lock(ops_mutex_);
      for (const auto& [subsystem, id] : health_registrations_) {
        if (id != 0) ids.push_back(id);
      }
      health_registrations_.clear();
    }
    for (uint64_t id : ids) options_.health->Detach(id);
  }
  // pool_ (last member) is destroyed first, draining queued Execute()
  // tasks while ops_ and the counters are still alive.
}

void Frontend::RegisterOperator(const std::string& name, Handler handler) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  CircuitBreaker::Options breaker_options = options_.breaker;
  // Breakers tick on the frontend's clock unless the caller pinned one.
  if (breaker_options.clock == nullptr) breaker_options.clock = clock_;
  const char* span_name = obs::InternName("serve." + name);
  // The breaker stamps its flight-recorder events with the operator it
  // protects.
  breaker_options.name = span_name;
  auto [it, inserted] =
      ops_.emplace(name, std::make_unique<Operator>(breaker_options));
  if (inserted) op_order_.push_back(name);
  it->second->handler = std::move(handler);
  it->second->span_name = span_name;
  for (size_t d = 0; d < obs::kNumCostDims; ++d) {
    it->second->cost_hist[d] = registry_->GetHistogram(
        "serve.op." + name + ".cost." +
        obs::CostDimName(static_cast<obs::CostDim>(d)));
  }
}

void Frontend::TagOperator(const std::string& name,
                           const std::string& subsystem) {
  bool need_register = false;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    auto it = ops_.find(name);
    if (it == ops_.end()) return;
    it->second->subsystem = subsystem;
    if (options_.health != nullptr &&
        health_registrations_.find(subsystem) == health_registrations_.end()) {
      // Reserve the slot so a concurrent TagOperator for the same
      // subsystem doesn't double-register; the real id lands below.
      health_registrations_[subsystem] = 0;
      need_register = true;
    }
  }
  if (need_register) {
    // Register() may block draining an in-flight evaluation whose
    // signal fns take ops_mutex_ — so it must run unlocked.
    uint64_t id = options_.health->Register(
        subsystem, "serve.breakers",
        [this, subsystem] { return BreakerSignal(subsystem); });
    std::lock_guard<std::mutex> lock(ops_mutex_);
    health_registrations_[subsystem] = id;
  }
}

void Frontend::MarkWrite(const std::string& name) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto it = ops_.find(name);
  if (it != ops_.end()) it->second->is_write = true;
}

void Frontend::SetFallback(const std::string& primary,
                           const std::string& fallback) {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto it = ops_.find(primary);
  if (it == ops_.end() || ops_.find(fallback) == ops_.end()) return;
  it->second->fallback = fallback;
}

std::future<Status> Frontend::Submit(const std::string& op_name,
                                     RequestContext ctx) {
  // A Priority forged from an out-of-range int would index the tier
  // counter arrays out of bounds; clamp unknown values to the lowest
  // tier (shed-first is the safe misclassification) so every
  // downstream consumer sees a valid tier.
  if (static_cast<size_t>(ctx.priority) >= kNumPriorities) {
    ctx.priority = Priority::kBackground;
  }
  const size_t tier = static_cast<size_t>(ctx.priority);
  issued_->Increment();
  tier_issued_[tier]->Increment();
  if (ctx.trace_id == 0) ctx.trace_id = obs::NextTraceId();
  auto done = std::make_shared<std::promise<Status>>();
  std::future<Status> fut = done->get_future();

  Operator* op = nullptr;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    auto it = ops_.find(op_name);
    if (it != ops_.end()) op = it->second.get();  // node-stable address
  }
  if (op == nullptr) {
    not_found_->Increment();
    tier_not_found_[tier]->Increment();
    done->set_value(Status::NotFound("no operator " + op_name));
    return fut;
  }

  if (options_.shed_enabled) {
    // Brownout: batch/background tiers only get their share of the
    // queue, shrinking as health worsens — the lower tiers shed first,
    // long before the queue itself is full.
    DegradationPolicy::Decision d = policy_.Admit(
        ctx.priority, pool_.stats().queue_depth, options_.max_queue_depth);
    if (!d.admit) {
      shed_->Increment();
      shed_brownout_->Increment();
      tier_shed_[tier]->Increment();
      done->set_value(Status::Unavailable(std::string("shed: ") + d.reason));
      return fut;
    }
  }

  int64_t enqueued_at_nanos = clock_->NowNanos();
  auto task = [this, op, op_name, ctx = std::move(ctx), enqueued_at_nanos,
               done]() {
    Execute(op, op_name, ctx, enqueued_at_nanos, done.get());
  };
  bool accepted;
  if (options_.shed_enabled) {
    accepted = pool_.TryPost(std::move(task));
  } else {
    pool_.Post(std::move(task));
    accepted = true;
  }
  if (!accepted) {
    // Shed at admission: the caller learns *now* instead of waiting
    // behind a queue that is already past its latency budget.
    shed_->Increment();
    tier_shed_[tier]->Increment();
    done->set_value(Status::Unavailable("shed: queue full"));
    return fut;
  }
  admitted_->Increment();
  tier_admitted_[tier]->Increment();
  return fut;
}

Status Frontend::Call(const std::string& op, RequestContext ctx) {
  return Submit(op, std::move(ctx)).get();
}

void Frontend::WaitIdle() { pool_.WaitIdle(); }

void Frontend::Resolve(std::promise<Status>* done, Status s) {
  switch (s.code()) {
    case StatusCode::kOk:
      ok_->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_exceeded_->Increment();
      break;
    case StatusCode::kCancelled:
      cancelled_->Increment();
      break;
    case StatusCode::kUnavailable:
      unavailable_->Increment();
      break;
    default:
      break;
  }
  done->set_value(std::move(s));
}

bool Frontend::TryFallback(Operator* primary, const RequestContext& ctx,
                           const std::string& why,
                           std::promise<Status>* done) {
  // No response channel means no way to flag the answer as degraded —
  // serving the fallback anyway would be exactly the silent
  // substitution the degraded contract forbids. Let the primary's
  // refusal stand instead.
  if (ctx.response == nullptr) return false;
  Operator* fb = nullptr;
  std::string fb_name;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    if (primary->fallback.empty()) return false;
    fb_name = primary->fallback;
    auto it = ops_.find(fb_name);
    if (it != ops_.end()) fb = it->second.get();
  }
  if (fb == nullptr) return false;
  if (Status s = ctx.interrupt.Check(); !s.ok()) {
    Resolve(done, std::move(s));
    return true;
  }
  uint64_t admission = CircuitBreaker::kCurrentAdmission;
  if (!fb->breaker.Allow(&admission)) {
    // Both rungs of the ladder refused; the caller resolves the
    // original refusal (counted there, not double-counted here).
    return false;
  }
  TRACE_SPAN("serve.fallback");
  // The fallback attempt runs through the same failpoint sites as a
  // primary attempt, so chaos reaches it too.
  Status st = MaybeFail("serve.op");
  if (st.ok()) st = MaybeFail("serve.op." + fb_name);
  if (st.ok()) {
    TRACE_SPAN("serve.handler");
    ScopedCacheBypass bypass(ctx.no_cache);
    int64_t started_nanos = clock_->NowNanos();
    st = fb->handler(ctx);
    obs::ChargeCost(obs::CostDim::kCpuNanos,
                    static_cast<uint64_t>(std::max<int64_t>(
                        0, clock_->NowNanos() - started_nanos)));
  }
  if (st.ok()) {
    fb->breaker.RecordSuccess(admission);
    // The degraded flag is the contract: a fallback-served answer is
    // never silently substituted for the requested operator's answer.
    // (ctx.response is non-null — checked at entry.)
    ctx.response->degraded = true;
    ctx.response->degraded_reason = why;
    ctx.response->served_by = fb_name;
    fallback_served_->Increment();
    degraded_answers_->Increment();
    Resolve(done, Status::OK());
    return true;
  }
  if (st.code() == StatusCode::kCancelled) {
    fb->breaker.ReleaseProbe(admission);
    Resolve(done, std::move(st));
    return true;
  }
  fb->breaker.RecordFailure(admission);
  if (st.code() == StatusCode::kDeadlineExceeded) {
    Resolve(done, std::move(st));
    return true;
  }
  // Single fallback attempt failed with a retryable error: fall back to
  // the caller's path (primary refusal, or the primary retry loop).
  return false;
}

void Frontend::Execute(Operator* op, const std::string& op_name,
                       const RequestContext& ctx, int64_t enqueued_at_nanos,
                       std::promise<Status>* done) {
  // Exactly one root span per admitted request: every Execute() runs
  // under this scope, including the queued-too-long shed path below.
  obs::TraceRequestScope root(ctx.trace_id, op->span_name);
  root_spans_->Increment();
  // Install the request's cost accumulator for everything below: charge
  // sites deep in the query/storage layers reach it thread-locally.
  // Frontend-owned accounting lives right here on the stack — a request
  // never pays a heap allocation for it; callers that pre-allocated an
  // accumulator in the context keep theirs (they want to read it back).
  obs::CostAccumulator frame_cost;
  obs::CostAccumulator* cost_acc =
      ctx.cost != nullptr
          ? ctx.cost.get()
          : (obs::CostAccountingEnabled() ? &frame_cost : nullptr);
  obs::ScopedCostContext cost_scope(cost_acc);
  int64_t dequeued_at_nanos = clock_->NowNanos();
  queue_wait_->Record(static_cast<uint64_t>(
      std::max<int64_t>(0, dequeued_at_nanos - enqueued_at_nanos)));
  // On every resolution path: roll the accumulated CostVector up into
  // the operator's per-dimension histograms and offer it to the top-K
  // expensive-request tracker. The tracker entry is stamped with the
  // dequeue time already in hand — the rollup itself never reads the
  // clock.
  struct CostRollup {
    Operator* op;
    const RequestContext* ctx;
    obs::CostAccumulator* acc;
    int64_t at_nanos;
    ~CostRollup() {
      if (acc == nullptr || !obs::CostAccountingEnabled()) return;
      obs::CostVector cost = acc->Snapshot();
      for (size_t d = 0; d < obs::kNumCostDims; ++d) {
        // Zero-valued dims are skipped: the cpu histogram's count is the
        // per-operator request count, so a dim's zero fraction is still
        // derivable, and a trivial request stays one Record, not six.
        if (cost.v[d] == 0 && d != static_cast<size_t>(obs::CostDim::kCpuNanos)) {
          continue;
        }
        if (op->cost_hist[d] != nullptr) op->cost_hist[d]->Record(cost.v[d]);
      }
      obs::ExpensiveRequestTracker::Instance().Record(
          ctx->trace_id, op->span_name, at_nanos, cost);
    }
  } rollup{op, &ctx, cost_acc, dequeued_at_nanos};
  // Request latency spans queue wait + every attempt, recorded on every
  // resolution path.
  struct LatencyRecorder {
    obs::Histogram* h;
    structura::Clock* clock;
    int64_t from_nanos;
    ~LatencyRecorder() {
      h->Record(static_cast<uint64_t>(
          std::max<int64_t>(0, clock->NowNanos() - from_nanos)));
    }
  } latency{request_latency_, clock_, enqueued_at_nanos};

  if (options_.shed_enabled) {
    int64_t waited_ms =
        (dequeued_at_nanos - enqueued_at_nanos) / 1'000'000;
    if (static_cast<uint64_t>(std::max<int64_t>(0, waited_ms)) >
        options_.max_queue_wait_ms) {
      // Running a request whose latency budget was spent waiting would
      // only add load exactly when the system is already behind.
      shed_queued_wait_->Increment();
      Resolve(done, Status::Unavailable("shed: queued too long"));
      return;
    }
  }

  // Read-only brownout: while the gate subsystem (the disk) is
  // critical, write operators are refused outright — letting the
  // handler fail halfway through a mutation would just re-latch the
  // storage layer the watchdog is trying to heal. Reads flow on.
  if (options_.health != nullptr && !options_.read_only_gate.empty()) {
    bool is_write;
    {
      std::lock_guard<std::mutex> lock(ops_mutex_);
      is_write = op->is_write;
    }
    if (is_write && options_.health->StateOf(options_.read_only_gate) ==
                        HealthState::kCritical) {
      std::string why =
          "read-only: " + options_.read_only_gate + " critical: " +
          options_.health->ReasonOf(options_.read_only_gate);
      if (ctx.response != nullptr) {
        // Not a degraded *answer* — there is none — but the channel
        // still carries the reason so callers can tell brownout from
        // a generic refusal.
        ctx.response->degraded = true;
        ctx.response->degraded_reason = why;
      }
      read_only_refused_->Increment();
      Resolve(done, Status::Unavailable(std::move(why)));
      return;
    }
  }

  // Health-driven rung of the fallback ladder: when the operator's
  // subsystem is critical, don't even offer it the request — serve the
  // degraded answer directly. (A merely-degraded subsystem still gets
  // the traffic; its breaker decides.)
  if (options_.health != nullptr) {
    std::string subsystem, fallback;
    {
      std::lock_guard<std::mutex> lock(ops_mutex_);
      subsystem = op->subsystem;
      fallback = op->fallback;
    }
    if (!subsystem.empty() && !fallback.empty() &&
        options_.health->StateOf(subsystem) == HealthState::kCritical) {
      // Canary trickle: every kCriticalCanaryEvery-th request still
      // attempts the primary, so recovery evidence (breaker probes,
      // fresh successes) keeps flowing. Routing *everything* around a
      // critical subsystem would starve the very signal that could
      // clear the verdict, wedging it critical forever.
      bool canary = op->canary.fetch_add(1, std::memory_order_relaxed) %
                        kCriticalCanaryEvery ==
                    kCriticalCanaryEvery - 1;
      if (!canary) {
        if (TryFallback(op, ctx, subsystem + " critical", done)) return;
      }
    }
  }

  Rng rng(options_.seed ^ (ctx.id * 0x9E3779B97F4A7C15ULL));
  uint32_t budget = ctx.retry_budget;
  uint32_t attempt = 0;
  while (true) {
    if (Status s = ctx.interrupt.Check(); !s.ok()) {
      Resolve(done, std::move(s));
      return;
    }
    uint64_t admission = CircuitBreaker::kCurrentAdmission;
    if (!op->breaker.Allow(&admission)) {
      breaker_rejected_->Increment();
      // Breaker-refused rung: try the fallback before failing the call.
      if (TryFallback(op, ctx, "breaker open for " + op_name, done)) return;
      Resolve(done, Status::Unavailable("breaker open for " + op_name));
      return;
    }
    ++attempt;
    // Failpoint-injected operator errors land here, before the real
    // handler — the hook tests and the chaos harness use to drive
    // breakers and retry paths deterministically.
    Status st = MaybeFail("serve.op");
    if (st.ok()) st = MaybeFail("serve.op." + op_name);
    if (st.ok()) {
      TRACE_SPAN("serve.handler");
      ScopedCacheBypass bypass(ctx.no_cache);
      int64_t started_nanos = clock_->NowNanos();
      st = op->handler(ctx);
      obs::ChargeCost(obs::CostDim::kCpuNanos,
                      static_cast<uint64_t>(std::max<int64_t>(
                          0, clock_->NowNanos() - started_nanos)));
    }
    if (st.ok()) {
      op->breaker.RecordSuccess(admission);
      Resolve(done, Status::OK());
      return;
    }
    if (st.code() == StatusCode::kCancelled) {
      // Client intent, not operator health: release the (possible)
      // probe slot without recording evidence either way — a cancelled
      // probe must not re-close a half-open breaker.
      op->breaker.ReleaseProbe(admission);
      Resolve(done, std::move(st));
      return;
    }
    if (st.code() == StatusCode::kDeadlineExceeded) {
      // Slowness IS a health signal — count it against the operator,
      // but don't retry: the budget is gone.
      op->breaker.RecordFailure(admission);
      Resolve(done, std::move(st));
      return;
    }
    op->breaker.RecordFailure(admission);
    if (budget == 0) {
      // Retry budget exhausted: one last chance to answer degraded
      // instead of not at all.
      if (TryFallback(op, ctx, op_name + " failing", done)) return;
      Resolve(done, Status::Unavailable(StrFormat(
                        "%s failed after %u attempts: %s", op_name.c_str(),
                        attempt, st.message().c_str())));
      return;
    }
    --budget;
    retries_->Increment();
    obs::ChargeCost(obs::CostDim::kRetries, 1);
    // Jittered exponential backoff, clipped to the remaining deadline.
    double base = static_cast<double>(options_.retry_base_ms);
    for (uint32_t i = 1; i < attempt; ++i) base *= options_.retry_multiplier;
    base = std::min(base, static_cast<double>(options_.retry_max_ms));
    auto backoff_ms =
        static_cast<uint64_t>(base * (0.5 + 0.5 * rng.NextDouble()));
    backoff_ms = std::min(backoff_ms, ctx.interrupt.deadline.RemainingMillis());
    if (backoff_ms > 0) {
      TRACE_SPAN("serve.retry_backoff");
      clock_->SleepForMillis(backoff_ms);
    }
  }
}

HealthSample Frontend::BreakerSignal(const std::string& subsystem) const {
  size_t total = 0, open = 0, half_open = 0;
  std::string worst_op;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    for (const auto& [name, op] : ops_) {
      if (op->subsystem != subsystem) continue;
      ++total;
      switch (op->breaker.state()) {
        case CircuitBreaker::State::kOpen:
          ++open;
          worst_op = name;
          break;
        case CircuitBreaker::State::kHalfOpen:
          ++half_open;
          if (open == 0) worst_op = name;
          break;
        case CircuitBreaker::State::kClosed:
          break;
      }
    }
  }
  if (total == 0 || (open == 0 && half_open == 0)) return HealthSample{};
  if (open == total) {
    return HealthSample{HealthState::kCritical,
                        "all breakers open (" + worst_op + ")"};
  }
  if (open > 0) {
    return HealthSample{HealthState::kDegraded, "breaker open: " + worst_op};
  }
  return HealthSample{HealthState::kDegraded,
                      "breaker half-open: " + worst_op};
}

HealthSample Frontend::AdmissionSignal() const {
  if (!options_.shed_enabled || options_.max_queue_depth == 0) {
    return HealthSample{};
  }
  size_t depth = pool_.stats().queue_depth;
  if (depth >= options_.max_queue_depth) {
    return HealthSample{HealthState::kCritical, "admission queue full"};
  }
  if (depth * 4 >= options_.max_queue_depth * 3) {
    return HealthSample{HealthState::kDegraded, "admission queue >=75% full"};
  }
  return HealthSample{};
}

ServingCounters Frontend::RegistryValues() const {
  ServingCounters c;
  c.issued = issued_->Value();
  c.admitted = admitted_->Value();
  c.shed = shed_->Value();
  c.not_found = not_found_->Value();
  c.ok = ok_->Value();
  c.deadline_exceeded = deadline_exceeded_->Value();
  c.cancelled = cancelled_->Value();
  c.unavailable = unavailable_->Value();
  c.shed_queued_wait = shed_queued_wait_->Value();
  c.breaker_rejected = breaker_rejected_->Value();
  c.read_only_refused = read_only_refused_->Value();
  c.shed_brownout = shed_brownout_->Value();
  c.fallback_served = fallback_served_->Value();
  c.degraded_answers = degraded_answers_->Value();
  c.retries = retries_->Value();
  c.root_spans = root_spans_->Value();
  for (size_t t = 0; t < kNumPriorities; ++t) {
    c.tiers[t].issued = tier_issued_[t]->Value();
    c.tiers[t].admitted = tier_admitted_[t]->Value();
    c.tiers[t].shed = tier_shed_[t]->Value();
    c.tiers[t].not_found = tier_not_found_[t]->Value();
  }
  return c;
}

ServingCounters Frontend::Counters() const {
  ServingCounters c = RegistryValues();
  c.issued -= base_.issued;
  c.admitted -= base_.admitted;
  c.shed -= base_.shed;
  c.not_found -= base_.not_found;
  c.ok -= base_.ok;
  c.deadline_exceeded -= base_.deadline_exceeded;
  c.cancelled -= base_.cancelled;
  c.unavailable -= base_.unavailable;
  c.shed_queued_wait -= base_.shed_queued_wait;
  c.breaker_rejected -= base_.breaker_rejected;
  c.read_only_refused -= base_.read_only_refused;
  c.shed_brownout -= base_.shed_brownout;
  c.fallback_served -= base_.fallback_served;
  c.degraded_answers -= base_.degraded_answers;
  c.retries -= base_.retries;
  c.root_spans -= base_.root_spans;
  for (size_t t = 0; t < kNumPriorities; ++t) {
    c.tiers[t].issued -= base_.tiers[t].issued;
    c.tiers[t].admitted -= base_.tiers[t].admitted;
    c.tiers[t].shed -= base_.tiers[t].shed;
    c.tiers[t].not_found -= base_.tiers[t].not_found;
  }
  c.queue_high_water = pool_.stats().queue_high_water;
  std::lock_guard<std::mutex> lock(ops_mutex_);
  for (const std::string& name : op_order_) {
    c.breakers.emplace_back(
        name, CircuitBreaker::StateName(ops_.at(name)->breaker.state()));
  }
  return c;
}

CircuitBreaker::State Frontend::BreakerState(const std::string& op) const {
  std::lock_guard<std::mutex> lock(ops_mutex_);
  auto it = ops_.find(op);
  return it == ops_.end() ? CircuitBreaker::State::kClosed
                          : it->second->breaker.state();
}

}  // namespace structura::serve
