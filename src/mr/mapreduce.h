#ifndef STRUCTURA_MR_MAPREDUCE_H_
#define STRUCTURA_MR_MAPREDUCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/clock.h"
#include "common/failpoint.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::mr {

namespace internal {
/// Registry handles for the engine-level MR metrics, resolved once.
/// Header-only (the job is a template), hence the function-local static.
struct EngineMetrics {
  obs::Counter* jobs;
  obs::Counter* jobs_failed;
  obs::Counter* map_tasks;
  obs::Counter* map_retries;
  obs::Counter* reduce_tasks;
  obs::Counter* reduce_retries;
  obs::Counter* records_mapped;
  obs::Counter* pairs_shuffled;
  obs::Counter* keys_reduced;
  obs::Histogram* job_latency_ns;
};
inline EngineMetrics& Metrics() {
  static EngineMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    return EngineMetrics{
        r.GetCounter("mr.jobs"),
        r.GetCounter("mr.jobs_failed"),
        r.GetCounter("mr.map.tasks"),
        r.GetCounter("mr.map.retries"),
        r.GetCounter("mr.reduce.tasks"),
        r.GetCounter("mr.reduce.retries"),
        r.GetCounter("mr.records.mapped"),
        r.GetCounter("mr.pairs.shuffled"),
        r.GetCounter("mr.keys.reduced"),
        r.GetHistogram("mr.job.latency_ns"),
    };
  }();
  return m;
}
}  // namespace internal

/// Execution knobs for one job. The engine is in-process: "workers" are
/// threads and "partitions" are shuffle buckets, mirroring the programming
/// model of the cluster the paper's physical layer calls for.
struct JobConfig {
  size_t num_workers = 4;
  size_t num_partitions = 8;
  /// Inputs per map task (a "split").
  size_t split_size = 64;
  /// Fault injection: probability that a map task attempt fails and must
  /// be re-executed. Exercises the retry path the cluster setting needs.
  double map_failure_prob = 0.0;
  /// Probability that a reduce task attempt fails and is re-executed
  /// (independent of the `mr.reduce` failpoint, which also fails reduce
  /// attempts when armed).
  double reduce_failure_prob = 0.0;
  int max_attempts = 4;
  /// Backoff before retry attempt k (2nd execution onward):
  /// retry_backoff_ms * backoff_multiplier^(k-2) milliseconds. Zero
  /// disables sleeping; the scheduled delays still land in JobStats.
  uint64_t retry_backoff_ms = 0;
  double backoff_multiplier = 2.0;
  uint64_t fault_seed = 7;
  /// Time source for retry backoff sleeps. nullptr = real time; a
  /// SimulatedClock makes backoff-heavy retry tests instantaneous.
  Clock* clock = nullptr;
};

/// Counters reported by a finished job (also populated on failure, with
/// whatever was observed before the job aborted).
struct JobStats {
  size_t map_tasks = 0;
  size_t reduce_tasks = 0;
  size_t map_retries = 0;
  size_t reduce_retries = 0;
  size_t records_mapped = 0;
  size_t pairs_shuffled = 0;
  size_t keys_reduced = 0;
  /// Total retry backoff scheduled across all task attempts, in ms.
  uint64_t backoff_ms = 0;

  std::string ToString() const;
};

/// Thrown-free typed MapReduce over in-memory inputs.
///
///   MapReduceJob<Doc, std::string, int> job;
///   job.set_mapper([](const Doc& d, auto emit) { emit(word, 1); });
///   job.set_reducer([](const std::string& k, const std::vector<int>& vs,
///                      auto out) { out(k, Sum(vs)); });
///   auto result = job.Run(pool, docs, config);
///
/// Keys must be ordered (std::map is used per shuffle bucket) so reduce
/// output is deterministic regardless of thread scheduling.
template <typename Input, typename Key, typename Value, typename Out>
class MapReduceJob {
 public:
  using EmitFn = std::function<void(Key, Value)>;
  using OutFn = std::function<void(Out)>;
  using Mapper = std::function<void(const Input&, const EmitFn&)>;
  /// Optional local pre-aggregation applied to each map task's output for
  /// one key before the shuffle (classic combiner).
  using Combiner =
      std::function<std::vector<Value>(const Key&, std::vector<Value>)>;
  using Reducer = std::function<void(const Key&, const std::vector<Value>&,
                                     const OutFn&)>;

  void set_mapper(Mapper m) { mapper_ = std::move(m); }
  void set_combiner(Combiner c) { combiner_ = std::move(c); }
  void set_reducer(Reducer r) { reducer_ = std::move(r); }

  /// Runs the job on `pool`. Returns reduce outputs in deterministic
  /// (partition, key) order. Fails if a map task exhausts its attempts.
  /// Map and reduce task loops poll `intr` cooperatively: a fired
  /// deadline or cancellation stops in-flight tasks at the next record
  /// and the job returns kDeadlineExceeded / kCancelled.
  Result<std::vector<Out>> Run(ThreadPool& pool,
                               const std::vector<Input>& inputs,
                               const JobConfig& config,
                               JobStats* stats = nullptr,
                               const Interrupt& intr = Interrupt{}) {
    if (!mapper_ || !reducer_) {
      return Status::FailedPrecondition("mapper and reducer must be set");
    }
    // Job span on the caller's thread; map/reduce tasks run on pool
    // threads, so each task adopts the caller's trace explicitly below.
    TRACE_SPAN("mr.job");
    const obs::TraceHandle job_trace = obs::CurrentTrace();
    internal::EngineMetrics& em = internal::Metrics();
    em.jobs->Increment();
    obs::ScopedLatency job_latency(em.job_latency_ns);
    JobStats local_stats;
    const size_t split = std::max<size_t>(1, config.split_size);
    const size_t num_splits = (inputs.size() + split - 1) / split;
    const size_t parts = std::max<size_t>(1, config.num_partitions);

    // Per-split, per-partition map output buffers: no locking during map.
    using Bucket = std::map<Key, std::vector<Value>>;
    std::vector<std::vector<Bucket>> map_out(
        num_splits, std::vector<Bucket>(parts));
    std::atomic<size_t> map_retries{0};
    std::atomic<size_t> reduce_retries{0};
    std::atomic<size_t> mapped{0};
    std::atomic<uint64_t> backoff_total_ms{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> interrupted{false};
    std::mutex fail_mutex;
    Status fail_status;
    // First failure wins. A plain task failure does NOT stop sibling
    // tasks — they run their own attempts to completion, keeping retry
    // accounting deterministic; only an interrupt (deadline/cancel)
    // makes the remaining tasks bail out early.
    auto record_failure = [&](Status s) {
      std::lock_guard<std::mutex> lock(fail_mutex);
      if (!failed.load()) fail_status = std::move(s);
      failed.store(true);
    };
    auto record_interrupt = [&](Status s) {
      record_failure(std::move(s));
      interrupted.store(true);
    };

    // Exponential per-attempt backoff before re-executing a failed task
    // attempt; returns the delay scheduled so callers can account it.
    auto backoff = [&](int attempt) -> uint64_t {
      if (config.retry_backoff_ms == 0 || attempt < 2) return 0;
      double delay = static_cast<double>(config.retry_backoff_ms);
      for (int i = 2; i < attempt; ++i) delay *= config.backoff_multiplier;
      auto ms = static_cast<uint64_t>(delay);
      backoff_total_ms.fetch_add(ms);
      Clock::OrReal(config.clock)->SleepForMillis(ms);
      return ms;
    };
    // Called exactly once per exit path: fills the caller's JobStats and
    // mirrors the same deltas into the process registry (mr.*).
    auto fill_stats = [&](size_t pairs, size_t keys) {
      em.map_tasks->Add(num_splits);
      em.reduce_tasks->Add(parts);
      em.map_retries->Add(map_retries.load());
      em.reduce_retries->Add(reduce_retries.load());
      em.records_mapped->Add(mapped.load());
      em.pairs_shuffled->Add(pairs);
      em.keys_reduced->Add(keys);
      if (failed.load()) em.jobs_failed->Increment();
      if (stats == nullptr) return;
      local_stats.map_tasks = num_splits;
      local_stats.reduce_tasks = parts;
      local_stats.map_retries = map_retries.load();
      local_stats.reduce_retries = reduce_retries.load();
      local_stats.records_mapped = mapped.load();
      local_stats.pairs_shuffled = pairs;
      local_stats.keys_reduced = keys;
      local_stats.backoff_ms = backoff_total_ms.load();
      *stats = local_stats;
    };

    ParallelFor(pool, num_splits, [&](size_t s) {
      obs::ScopedTraceContext adopt(job_trace);
      TRACE_SPAN("mr.map");
      Rng rng(config.fault_seed + s * 1000003);
      int attempt = 0;
      while (true) {
        if (interrupted.load()) return;  // the request already gave up
        if (Status s_intr = intr.Check(); !s_intr.ok()) {
          record_interrupt(std::move(s_intr));
          return;
        }
        ++attempt;
        if (attempt > config.max_attempts) {
          record_failure(Status::Aborted("map split exhausted attempts"));
          return;
        }
        backoff(attempt);
        std::vector<Bucket> buckets(parts);
        bool attempt_failed = false;
        size_t begin = s * split;
        size_t end = std::min(inputs.size(), begin + split);
        // Fault injection decision happens mid-task, after some work,
        // like a real preempted worker. NextBounded(end - begin) keeps
        // fail_at inside [begin, end) so a scheduled failure always
        // fires (a bound of end-begin+1 could land on `end`, silently
        // skipping the fault).
        size_t fail_at = config.map_failure_prob > 0 &&
                                 rng.NextBool(config.map_failure_prob)
                             ? begin + rng.NextBounded(end - begin)
                             : static_cast<size_t>(-1);
        for (size_t i = begin; i < end; ++i) {
          if (i == fail_at) {
            attempt_failed = true;
            break;
          }
          // Per-record check-point: a fired deadline mid-split stops the
          // task here instead of mapping the remainder.
          if (intr.CanInterrupt()) {
            if (Status s_intr = intr.Check(); !s_intr.ok()) {
              record_interrupt(std::move(s_intr));
              return;
            }
          }
          mapper_(inputs[i], [&](Key k, Value v) {
            size_t p = PartitionOf(k, parts);
            buckets[p][std::move(k)].push_back(std::move(v));
          });
        }
        if (attempt_failed) {
          map_retries.fetch_add(1);
          continue;  // re-execute the split from scratch
        }
        if (combiner_) {
          for (Bucket& b : buckets) {
            for (auto& [k, vs] : b) vs = combiner_(k, std::move(vs));
          }
        }
        mapped.fetch_add(end - begin);
        map_out[s] = std::move(buckets);
        return;
      }
    });
    if (failed.load()) {
      fill_stats(0, 0);
      return fail_status;
    }

    // Shuffle: merge per-split buckets into per-partition tables.
    std::vector<Bucket> shuffled(parts);
    size_t pairs = 0;
    std::mutex pairs_mutex;
    ParallelFor(pool, parts, [&](size_t p) {
      obs::ScopedTraceContext adopt(job_trace);
      TRACE_SPAN("mr.shuffle");
      size_t local_pairs = 0;
      for (size_t s = 0; s < num_splits; ++s) {
        for (auto& [k, vs] : map_out[s][p]) {
          auto& dst = shuffled[p][k];
          local_pairs += vs.size();
          dst.insert(dst.end(), std::make_move_iterator(vs.begin()),
                     std::make_move_iterator(vs.end()));
        }
      }
      std::lock_guard<std::mutex> lock(pairs_mutex);
      pairs += local_pairs;
    });

    // Reduce each partition with the same retry discipline as map:
    // injected faults (reduce_failure_prob or the `mr.reduce` failpoint)
    // fail the attempt, which re-executes from scratch after backoff.
    // Outputs are collected per partition then concatenated in partition
    // order for determinism.
    std::vector<std::vector<Out>> reduce_out(parts);
    std::atomic<size_t> keys{0};
    ParallelFor(pool, parts, [&](size_t p) {
      obs::ScopedTraceContext adopt(job_trace);
      TRACE_SPAN("mr.reduce");
      Rng rng(config.fault_seed + 0x9E37 + p * 7919);
      int attempt = 0;
      while (true) {
        if (interrupted.load()) return;
        if (Status s_intr = intr.Check(); !s_intr.ok()) {
          record_interrupt(std::move(s_intr));
          return;
        }
        ++attempt;
        if (attempt > config.max_attempts) {
          record_failure(
              Status::Aborted("reduce partition exhausted attempts"));
          return;
        }
        backoff(attempt);
        bool attempt_failed =
            (config.reduce_failure_prob > 0 &&
             rng.NextBool(config.reduce_failure_prob)) ||
            !MaybeFail("mr.reduce").ok();
        if (!attempt_failed) {
          std::vector<Out> out;
          size_t part_keys = 0;
          for (const auto& [k, vs] : shuffled[p]) {
            if (intr.CanInterrupt() && (part_keys & 63) == 0) {
              if (Status s_intr = intr.Check(); !s_intr.ok()) {
                record_interrupt(std::move(s_intr));
                return;
              }
            }
            ++part_keys;
            reducer_(k, vs, [&](Out o) { out.push_back(std::move(o)); });
          }
          keys.fetch_add(part_keys);
          reduce_out[p] = std::move(out);
          return;
        }
        reduce_retries.fetch_add(1);
      }
    });
    if (failed.load()) {
      fill_stats(pairs, keys.load());
      return fail_status;
    }

    std::vector<Out> result;
    for (std::vector<Out>& part : reduce_out) {
      result.insert(result.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    fill_stats(pairs, keys.load());
    return result;
  }

 private:
  static size_t PartitionOf(const Key& k, size_t parts) {
    if constexpr (std::is_convertible_v<Key, std::string_view>) {
      return Fnv1a64(std::string_view(k)) % parts;
    } else {
      return std::hash<Key>{}(k) % parts;
    }
  }

  Mapper mapper_;
  Combiner combiner_;
  Reducer reducer_;
};

}  // namespace structura::mr

#endif  // STRUCTURA_MR_MAPREDUCE_H_
