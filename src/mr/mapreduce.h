#ifndef STRUCTURA_MR_MAPREDUCE_H_
#define STRUCTURA_MR_MAPREDUCE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"

namespace structura::mr {

/// Execution knobs for one job. The engine is in-process: "workers" are
/// threads and "partitions" are shuffle buckets, mirroring the programming
/// model of the cluster the paper's physical layer calls for.
struct JobConfig {
  size_t num_workers = 4;
  size_t num_partitions = 8;
  /// Inputs per map task (a "split").
  size_t split_size = 64;
  /// Fault injection: probability that a map task attempt fails and must
  /// be re-executed. Exercises the retry path the cluster setting needs.
  double map_failure_prob = 0.0;
  int max_attempts = 4;
  uint64_t fault_seed = 7;
};

/// Counters reported by a finished job.
struct JobStats {
  size_t map_tasks = 0;
  size_t reduce_tasks = 0;
  size_t map_retries = 0;
  size_t records_mapped = 0;
  size_t pairs_shuffled = 0;
  size_t keys_reduced = 0;

  std::string ToString() const;
};

/// Thrown-free typed MapReduce over in-memory inputs.
///
///   MapReduceJob<Doc, std::string, int> job;
///   job.set_mapper([](const Doc& d, auto emit) { emit(word, 1); });
///   job.set_reducer([](const std::string& k, const std::vector<int>& vs,
///                      auto out) { out(k, Sum(vs)); });
///   auto result = job.Run(pool, docs, config);
///
/// Keys must be ordered (std::map is used per shuffle bucket) so reduce
/// output is deterministic regardless of thread scheduling.
template <typename Input, typename Key, typename Value, typename Out>
class MapReduceJob {
 public:
  using EmitFn = std::function<void(Key, Value)>;
  using OutFn = std::function<void(Out)>;
  using Mapper = std::function<void(const Input&, const EmitFn&)>;
  /// Optional local pre-aggregation applied to each map task's output for
  /// one key before the shuffle (classic combiner).
  using Combiner =
      std::function<std::vector<Value>(const Key&, std::vector<Value>)>;
  using Reducer = std::function<void(const Key&, const std::vector<Value>&,
                                     const OutFn&)>;

  void set_mapper(Mapper m) { mapper_ = std::move(m); }
  void set_combiner(Combiner c) { combiner_ = std::move(c); }
  void set_reducer(Reducer r) { reducer_ = std::move(r); }

  /// Runs the job on `pool`. Returns reduce outputs in deterministic
  /// (partition, key) order. Fails if a map task exhausts its attempts.
  Result<std::vector<Out>> Run(ThreadPool& pool,
                               const std::vector<Input>& inputs,
                               const JobConfig& config,
                               JobStats* stats = nullptr) {
    if (!mapper_ || !reducer_) {
      return Status::FailedPrecondition("mapper and reducer must be set");
    }
    JobStats local_stats;
    const size_t split = std::max<size_t>(1, config.split_size);
    const size_t num_splits = (inputs.size() + split - 1) / split;
    const size_t parts = std::max<size_t>(1, config.num_partitions);

    // Per-split, per-partition map output buffers: no locking during map.
    using Bucket = std::map<Key, std::vector<Value>>;
    std::vector<std::vector<Bucket>> map_out(
        num_splits, std::vector<Bucket>(parts));
    std::atomic<size_t> retries{0};
    std::atomic<size_t> mapped{0};
    std::atomic<bool> failed{false};
    std::mutex fail_mutex;
    std::string fail_msg;

    ParallelFor(pool, num_splits, [&](size_t s) {
      Rng rng(config.fault_seed + s * 1000003);
      int attempt = 0;
      while (true) {
        ++attempt;
        if (attempt > config.max_attempts) {
          std::lock_guard<std::mutex> lock(fail_mutex);
          failed.store(true);
          fail_msg = "map split exhausted attempts";
          return;
        }
        std::vector<Bucket> buckets(parts);
        bool attempt_failed = false;
        size_t begin = s * split;
        size_t end = std::min(inputs.size(), begin + split);
        // Fault injection decision happens mid-task, after some work,
        // like a real preempted worker.
        size_t fail_at = config.map_failure_prob > 0 &&
                                 rng.NextBool(config.map_failure_prob)
                             ? begin + rng.NextBounded(end - begin + 1)
                             : static_cast<size_t>(-1);
        for (size_t i = begin; i < end; ++i) {
          if (i == fail_at) {
            attempt_failed = true;
            break;
          }
          mapper_(inputs[i], [&](Key k, Value v) {
            size_t p = PartitionOf(k, parts);
            buckets[p][std::move(k)].push_back(std::move(v));
          });
        }
        if (attempt_failed) {
          retries.fetch_add(1);
          continue;  // re-execute the split from scratch
        }
        if (combiner_) {
          for (Bucket& b : buckets) {
            for (auto& [k, vs] : b) vs = combiner_(k, std::move(vs));
          }
        }
        mapped.fetch_add(end - begin);
        map_out[s] = std::move(buckets);
        return;
      }
    });
    if (failed.load()) return Status::Aborted(fail_msg);

    // Shuffle: merge per-split buckets into per-partition tables.
    std::vector<Bucket> shuffled(parts);
    size_t pairs = 0;
    std::mutex pairs_mutex;
    ParallelFor(pool, parts, [&](size_t p) {
      size_t local_pairs = 0;
      for (size_t s = 0; s < num_splits; ++s) {
        for (auto& [k, vs] : map_out[s][p]) {
          auto& dst = shuffled[p][k];
          local_pairs += vs.size();
          dst.insert(dst.end(), std::make_move_iterator(vs.begin()),
                     std::make_move_iterator(vs.end()));
        }
      }
      std::lock_guard<std::mutex> lock(pairs_mutex);
      pairs += local_pairs;
    });

    // Reduce each partition; collect outputs per partition then
    // concatenate in partition order for determinism.
    std::vector<std::vector<Out>> reduce_out(parts);
    std::atomic<size_t> keys{0};
    ParallelFor(pool, parts, [&](size_t p) {
      for (const auto& [k, vs] : shuffled[p]) {
        keys.fetch_add(1);
        reducer_(k, vs, [&](Out o) { reduce_out[p].push_back(std::move(o)); });
      }
    });

    std::vector<Out> result;
    for (std::vector<Out>& part : reduce_out) {
      result.insert(result.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
    }
    if (stats != nullptr) {
      local_stats.map_tasks = num_splits;
      local_stats.reduce_tasks = parts;
      local_stats.map_retries = retries.load();
      local_stats.records_mapped = mapped.load();
      local_stats.pairs_shuffled = pairs;
      local_stats.keys_reduced = keys.load();
      *stats = local_stats;
    }
    return result;
  }

 private:
  static size_t PartitionOf(const Key& k, size_t parts) {
    if constexpr (std::is_convertible_v<Key, std::string_view>) {
      return Fnv1a64(std::string_view(k)) % parts;
    } else {
      return std::hash<Key>{}(k) % parts;
    }
  }

  Mapper mapper_;
  Combiner combiner_;
  Reducer reducer_;
};

}  // namespace structura::mr

#endif  // STRUCTURA_MR_MAPREDUCE_H_
