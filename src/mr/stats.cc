#include "mr/mapreduce.h"

#include "common/strings.h"

namespace structura::mr {

std::string JobStats::ToString() const {
  return StrFormat(
      "map_tasks=%zu reduce_tasks=%zu retries=%zu records=%zu "
      "shuffled=%zu keys=%zu",
      map_tasks, reduce_tasks, map_retries, records_mapped, pairs_shuffled,
      keys_reduced);
}

}  // namespace structura::mr
