#include "mr/mapreduce.h"

#include "common/strings.h"

namespace structura::mr {

std::string JobStats::ToString() const {
  return StrFormat(
      "map_tasks=%zu reduce_tasks=%zu map_retries=%zu reduce_retries=%zu "
      "records=%zu shuffled=%zu keys=%zu backoff_ms=%llu",
      map_tasks, reduce_tasks, map_retries, reduce_retries, records_mapped,
      pairs_shuffled, keys_reduced,
      static_cast<unsigned long long>(backoff_ms));
}

}  // namespace structura::mr
