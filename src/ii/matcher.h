#ifndef STRUCTURA_II_MATCHER_H_
#define STRUCTURA_II_MATCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace structura::ii {

/// A surface mention awaiting entity resolution ("David Smith" on page 12,
/// "D. Smith" on page 40 — the paper's running example of semantic
/// heterogeneity, Section 3.2).
struct MentionRecord {
  uint64_t id = 0;          // caller-assigned (e.g. fact id)
  std::string surface;
  std::string context;      // optional: nearby text, for context-aware scores
};

/// Pairwise similarity in [0, 1] between two mentions.
class SimilarityMatcher {
 public:
  virtual ~SimilarityMatcher() = default;
  virtual std::string name() const = 0;
  virtual double Score(const MentionRecord& a,
                       const MentionRecord& b) const = 0;
};

/// Jaro-Winkler over raw surfaces.
class JaroWinklerMatcher : public SimilarityMatcher {
 public:
  std::string name() const override { return "jaro_winkler"; }
  double Score(const MentionRecord& a,
               const MentionRecord& b) const override;
};

/// Normalized Levenshtein over raw surfaces.
class LevenshteinMatcher : public SimilarityMatcher {
 public:
  std::string name() const override { return "levenshtein"; }
  double Score(const MentionRecord& a,
               const MentionRecord& b) const override;
};

/// Name-aware matcher handling the heterogeneity the corpus (and real
/// text) contains:
///  - "Smith, David"  -> token reorder around the comma
///  - "D. Smith"      -> single-letter tokens match words by initial
///  - "City of X"     -> leading stop-tokens ("city", "of", "the") dropped
///  - "Madison, Wisconsin" vs "Madison" -> containment of token sets
/// Score: matched token fraction of the smaller normalized token set,
/// averaged with Jaro-Winkler as a tiebreaker.
class NameMatcher : public SimilarityMatcher {
 public:
  std::string name() const override { return "name"; }
  double Score(const MentionRecord& a,
               const MentionRecord& b) const override;

  /// Normalization used by the matcher (exposed for tests/blocking):
  /// lowercase, comma-reorder, stop-token removal.
  static std::vector<std::string> NormalizeTokens(const std::string& s);
};

}  // namespace structura::ii

#endif  // STRUCTURA_II_MATCHER_H_
