#include "ii/schema_matcher.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace structura::ii {
namespace {

/// True (with parsed range) when most sample values are numeric.
bool NumericProfile(const AttributeProfile& p, double* lo, double* hi) {
  size_t numeric = 0;
  *lo = 1e300;
  *hi = -1e300;
  for (const std::string& v : p.sample_values) {
    std::string cleaned;
    for (char c : v) {
      if (c != ',') cleaned += c;
    }
    double x;
    if (ParseDouble(cleaned, &x)) {
      ++numeric;
      *lo = std::min(*lo, x);
      *hi = std::max(*hi, x);
    }
  }
  return !p.sample_values.empty() &&
         numeric * 2 >= p.sample_values.size();
}

}  // namespace

double ValueOverlap(const AttributeProfile& a, const AttributeProfile& b) {
  double alo, ahi, blo, bhi;
  bool a_num = NumericProfile(a, &alo, &ahi);
  bool b_num = NumericProfile(b, &blo, &bhi);
  if (a_num != b_num) return 0.0;
  if (a_num) {
    // Range overlap / combined span.
    double lo = std::max(alo, blo), hi = std::min(ahi, bhi);
    double span = std::max(ahi, bhi) - std::min(alo, blo);
    if (span <= 0) return alo == blo ? 1.0 : 0.0;
    return std::max(0.0, hi - lo) / span;
  }
  // Token Jaccard over pooled sample values.
  std::vector<std::string> ta, tb;
  for (const std::string& v : a.sample_values) {
    for (std::string& t : text::WordTokens(v)) ta.push_back(std::move(t));
  }
  for (const std::string& v : b.sample_values) {
    for (std::string& t : text::WordTokens(v)) tb.push_back(std::move(t));
  }
  return text::TokenJaccard(ta, tb);
}

std::vector<SchemaMatch> MatchSchemas(
    const std::vector<AttributeProfile>& a,
    const std::vector<AttributeProfile>& b,
    const SchemaMatchOptions& options) {
  auto synonym = [&](const std::string& x, const std::string& y) {
    for (const auto& [s, t] : options.synonyms) {
      if ((s == x && t == y) || (s == y && t == x)) return true;
    }
    return false;
  };
  std::vector<SchemaMatch> all;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      std::string an = ToLower(a[i].name), bn = ToLower(b[j].name);
      double name_sim = synonym(an, bn)
                            ? 1.0
                            : text::JaroWinklerSimilarity(an, bn);
      double value_sim = ValueOverlap(a[i], b[j]);
      double score = options.name_weight * name_sim +
                     options.value_weight * value_sim;
      if (score >= options.threshold) {
        all.push_back(SchemaMatch{i, j, score});
      }
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SchemaMatch& x, const SchemaMatch& y) {
              return x.score > y.score;
            });
  // Greedy one-to-one assignment.
  std::vector<bool> used_a(a.size(), false), used_b(b.size(), false);
  std::vector<SchemaMatch> out;
  for (const SchemaMatch& m : all) {
    if (used_a[m.a_index] || used_b[m.b_index]) continue;
    used_a[m.a_index] = true;
    used_b[m.b_index] = true;
    out.push_back(m);
  }
  return out;
}

}  // namespace structura::ii
