#include "ii/resolution.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "ii/union_find.h"

namespace structura::ii {
namespace {

/// Candidate pairs that share at least one normalized token (multi-key
/// token blocking). Deduplicated, a < b.
std::vector<std::pair<size_t, size_t>> BlockedPairs(
    const std::vector<MentionRecord>& mentions) {
  std::unordered_map<std::string, std::vector<size_t>> blocks;
  for (size_t i = 0; i < mentions.size(); ++i) {
    for (const std::string& tok :
         NameMatcher::NormalizeTokens(mentions[i].surface)) {
      // Single letters ("d" from "D.") block on the initial so they meet
      // full names starting with the same letter.
      std::string key = tok.size() == 1 ? tok : tok;
      blocks[key].push_back(i);
      if (tok.size() > 1) blocks[std::string(1, tok[0])].push_back(i);
    }
  }
  std::set<std::pair<size_t, size_t>> pairs;
  for (const auto& [key, members] : blocks) {
    // Oversized blocks (e.g. an initial shared by thousands) are capped:
    // classic blocking hygiene to avoid quadratic blowup on stop tokens.
    if (members.size() > 512) continue;
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        size_t a = members[i], b = members[j];
        if (a == b) continue;
        if (a > b) std::swap(a, b);
        pairs.emplace(a, b);
      }
    }
  }
  return {pairs.begin(), pairs.end()};
}

}  // namespace

ResolutionResult ResolveEntities(const std::vector<MentionRecord>& mentions,
                                 const ResolutionOptions& options) {
  ResolutionResult result;
  result.cluster_of.resize(mentions.size());
  UnionFind uf(mentions.size());

  std::vector<std::pair<size_t, size_t>> candidates;
  if (options.use_blocking) {
    candidates = BlockedPairs(mentions);
  } else {
    candidates.reserve(mentions.size() * (mentions.size() - 1) / 2);
    for (size_t i = 0; i < mentions.size(); ++i) {
      for (size_t j = i + 1; j < mentions.size(); ++j) {
        candidates.emplace_back(i, j);
      }
    }
  }

  for (const auto& [a, b] : candidates) {
    double score = options.matcher->Score(mentions[a], mentions[b]);
    ++result.pairs_scored;
    if (score >= options.threshold) {
      uf.Union(a, b);
      result.merged_pairs.push_back(ScoredPair{a, b, score});
    }
  }

  for (size_t i = 0; i < mentions.size(); ++i) {
    result.cluster_of[i] = uf.Find(i);
  }
  result.num_clusters = uf.NumSets();
  return result;
}

std::vector<ScoredPair> TopKCandidates(
    const std::vector<MentionRecord>& mentions, size_t query,
    const SimilarityMatcher& matcher, size_t k) {
  std::vector<ScoredPair> scored;
  scored.reserve(mentions.size());
  for (size_t i = 0; i < mentions.size(); ++i) {
    if (i == query) continue;
    scored.push_back(
        ScoredPair{query, i, matcher.Score(mentions[query], mentions[i])});
  }
  std::partial_sort(scored.begin(),
                    scored.begin() + std::min(k, scored.size()),
                    scored.end(),
                    [](const ScoredPair& x, const ScoredPair& y) {
                      return x.score > y.score;
                    });
  scored.resize(std::min(k, scored.size()));
  return scored;
}

}  // namespace structura::ii
