#include "ii/matcher.h"

#include <algorithm>

#include "common/strings.h"
#include "text/similarity.h"
#include "text/tokenizer.h"

namespace structura::ii {

double JaroWinklerMatcher::Score(const MentionRecord& a,
                                 const MentionRecord& b) const {
  return text::JaroWinklerSimilarity(a.surface, b.surface);
}

double LevenshteinMatcher::Score(const MentionRecord& a,
                                 const MentionRecord& b) const {
  return text::LevenshteinSimilarity(a.surface, b.surface);
}

std::vector<std::string> NameMatcher::NormalizeTokens(
    const std::string& s) {
  // Token-set scoring is order-insensitive, so "Smith, David" needs no
  // reorder — only lowercasing and stop-token stripping.
  std::vector<std::string> tokens = text::WordTokens(s);
  // Drop leading stop tokens ("City of Madison" -> "madison").
  static const char* kStops[] = {"city", "of", "the", "town"};
  size_t start = 0;
  while (start < tokens.size()) {
    bool is_stop = false;
    for (const char* stop : kStops) {
      if (tokens[start] == stop) {
        is_stop = true;
        break;
      }
    }
    if (!is_stop) break;
    ++start;
  }
  if (start > 0 && start < tokens.size()) {
    tokens.erase(tokens.begin(), tokens.begin() + static_cast<long>(start));
  }
  return tokens;
}

double NameMatcher::Score(const MentionRecord& a,
                          const MentionRecord& b) const {
  std::vector<std::string> ta = NormalizeTokens(a.surface);
  std::vector<std::string> tb = NormalizeTokens(b.surface);
  if (ta.empty() || tb.empty()) return 0.0;
  if (ta.size() > tb.size()) std::swap(ta, tb);
  // Greedy alignment of the smaller token set into the larger one;
  // single-letter tokens ("d" from "D.") match on initial.
  std::vector<bool> used(tb.size(), false);
  size_t matched = 0;
  for (const std::string& x : ta) {
    for (size_t j = 0; j < tb.size(); ++j) {
      if (used[j]) continue;
      const std::string& y = tb[j];
      bool hit = x == y ||
                 (x.size() == 1 && !y.empty() && y[0] == x[0]) ||
                 (y.size() == 1 && !x.empty() && x[0] == y[0]);
      if (hit) {
        used[j] = true;
        ++matched;
        break;
      }
    }
  }
  double containment = static_cast<double>(matched) / ta.size();
  double jw = text::JaroWinklerSimilarity(a.surface, b.surface);
  // Containment dominates; JW breaks ties between near-misses.
  return 0.8 * containment + 0.2 * jw;
}

}  // namespace structura::ii
