#ifndef STRUCTURA_II_RESOLUTION_H_
#define STRUCTURA_II_RESOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "ii/matcher.h"

namespace structura::ii {

/// Entity-resolution configuration. Blocking restricts pairwise scoring
/// to mentions sharing at least one normalized token; without it every
/// pair is scored (quadratic — kept for the ablation benchmark).
struct ResolutionOptions {
  const SimilarityMatcher* matcher = nullptr;  // required
  double threshold = 0.8;
  bool use_blocking = true;
};

/// One scored candidate pair (above or below threshold, as recorded).
struct ScoredPair {
  size_t a = 0;  // mention indexes
  size_t b = 0;
  double score = 0;
};

struct ResolutionResult {
  /// cluster_of[i] = representative mention index of i's cluster.
  std::vector<size_t> cluster_of;
  size_t num_clusters = 0;
  /// Number of pairwise similarity computations performed (work metric).
  size_t pairs_scored = 0;
  /// Pairs that scored above threshold and were merged.
  std::vector<ScoredPair> merged_pairs;
};

/// Clusters `mentions` into entities: union-find over above-threshold
/// pairs from the (blocked) candidate set.
ResolutionResult ResolveEntities(const std::vector<MentionRecord>& mentions,
                                 const ResolutionOptions& options);

/// Top-k most similar mentions to `query` among `mentions` (excluding
/// itself) — the candidate list the paper argues humans can verify far
/// more easily than they could generate (Section 3.3).
std::vector<ScoredPair> TopKCandidates(
    const std::vector<MentionRecord>& mentions, size_t query,
    const SimilarityMatcher& matcher, size_t k);

}  // namespace structura::ii

#endif  // STRUCTURA_II_RESOLUTION_H_
