#ifndef STRUCTURA_II_UNION_FIND_H_
#define STRUCTURA_II_UNION_FIND_H_

#include <cstddef>
#include <numeric>
#include <vector>

namespace structura::ii {

/// Disjoint-set forest with path compression and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the two sets were distinct.
  bool Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --num_sets_adjust_;
    return true;
  }

  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t NumSets() { return parent_.size() + num_sets_adjust_; }

  size_t SetSize(size_t x) { return size_[Find(x)]; }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
  ptrdiff_t num_sets_adjust_ = 0;
};

}  // namespace structura::ii

#endif  // STRUCTURA_II_UNION_FIND_H_
