#ifndef STRUCTURA_II_SCHEMA_MATCHER_H_
#define STRUCTURA_II_SCHEMA_MATCHER_H_

#include <map>
#include <string>
#include <vector>

namespace structura::ii {

/// One attribute of an extracted schema with a sample of its values —
/// enough signal for instance-based matching.
struct AttributeProfile {
  std::string name;
  std::vector<std::string> sample_values;
};

struct SchemaMatch {
  size_t a_index = 0;
  size_t b_index = 0;
  double score = 0;
};

struct SchemaMatchOptions {
  double threshold = 0.5;
  /// Known synonym pairs (both directions), e.g. {"location","address"} —
  /// the paper's own example of attributes that "may in fact match".
  std::vector<std::pair<std::string, std::string>> synonyms;
  double name_weight = 0.5;
  double value_weight = 0.5;
};

/// Matches attributes of schema `a` against schema `b`. Score combines
/// name similarity (Jaro-Winkler, boosted to 1.0 for registered synonyms)
/// with instance similarity (Jaccard of value-token sets; numeric
/// attributes compare range overlap). Greedy one-to-one assignment in
/// descending score order, cut at `threshold`.
std::vector<SchemaMatch> MatchSchemas(
    const std::vector<AttributeProfile>& a,
    const std::vector<AttributeProfile>& b,
    const SchemaMatchOptions& options);

/// Instance similarity component, exposed for tests.
double ValueOverlap(const AttributeProfile& a, const AttributeProfile& b);

}  // namespace structura::ii

#endif  // STRUCTURA_II_SCHEMA_MATCHER_H_
