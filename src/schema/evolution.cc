#include "schema/evolution.h"

#include <map>

#include "common/strings.h"

namespace structura::schema {

Result<uint32_t> EvolvingSchema::AddAttribute(const std::string& attribute,
                                              rdbms::ValueType type,
                                              std::string reason) {
  if (HasAttribute(attribute)) {
    return Status::AlreadyExists("attribute " + attribute);
  }
  SchemaChange change;
  change.kind = SchemaChange::Kind::kAddAttribute;
  change.attribute = attribute;
  change.type = type;
  change.version = ++version_;
  change.reason = std::move(reason);
  history_.push_back(std::move(change));
  return version_;
}

Result<uint32_t> EvolvingSchema::RenameAttribute(const std::string& from,
                                                 const std::string& to,
                                                 std::string reason) {
  if (!HasAttribute(from)) {
    return Status::NotFound("attribute " + from);
  }
  if (HasAttribute(to)) {
    return Status::AlreadyExists("attribute " + to);
  }
  SchemaChange change;
  change.kind = SchemaChange::Kind::kRenameAttribute;
  change.attribute = from;
  change.renamed_to = to;
  change.version = ++version_;
  change.reason = std::move(reason);
  history_.push_back(std::move(change));
  return version_;
}

Result<uint32_t> EvolvingSchema::DropAttribute(const std::string& attribute,
                                               std::string reason) {
  if (!HasAttribute(attribute)) {
    return Status::NotFound("attribute " + attribute);
  }
  SchemaChange change;
  change.kind = SchemaChange::Kind::kDropAttribute;
  change.attribute = attribute;
  change.version = ++version_;
  change.reason = std::move(reason);
  history_.push_back(std::move(change));
  return version_;
}

std::vector<rdbms::Column> EvolvingSchema::AttributesAt(
    uint32_t version) const {
  std::vector<rdbms::Column> columns;
  for (const SchemaChange& change : history_) {
    if (change.version > version) break;
    switch (change.kind) {
      case SchemaChange::Kind::kAddAttribute:
        columns.push_back(rdbms::Column{change.attribute, change.type});
        break;
      case SchemaChange::Kind::kRenameAttribute:
        for (rdbms::Column& c : columns) {
          if (c.name == change.attribute) c.name = change.renamed_to;
        }
        break;
      case SchemaChange::Kind::kDropAttribute:
        for (size_t i = 0; i < columns.size(); ++i) {
          if (columns[i].name == change.attribute) {
            columns.erase(columns.begin() + static_cast<long>(i));
            break;
          }
        }
        break;
    }
  }
  return columns;
}

bool EvolvingSchema::HasAttribute(const std::string& attribute) const {
  for (const rdbms::Column& c : CurrentAttributes()) {
    if (c.name == attribute) return true;
  }
  return false;
}

Result<std::string> MigrateTable(rdbms::Database* db,
                                 const std::string& table,
                                 const EvolvingSchema& schema) {
  rdbms::Table* old_table = db->GetTable(table);
  if (old_table == nullptr) {
    return Status::NotFound("no table " + table);
  }
  rdbms::TableSchema new_schema;
  new_schema.table_name =
      StrFormat("%s_v%u", table.c_str(), schema.current_version());
  new_schema.columns = schema.CurrentAttributes();

  // Old column -> new column position, following renames: match by name
  // directly; renamed columns are found by replaying history.
  const rdbms::TableSchema& old = old_table->schema();
  std::map<std::string, std::string> renamed;  // old name -> current name
  for (const rdbms::Column& c : old.columns) renamed[c.name] = c.name;
  for (const SchemaChange& change : schema.history()) {
    if (change.kind != SchemaChange::Kind::kRenameAttribute) continue;
    for (auto& [from, to] : renamed) {
      if (to == change.attribute) to = change.renamed_to;
    }
  }

  STRUCTURA_ASSIGN_OR_RETURN(rdbms::Table * created,
                             db->CreateTable(new_schema));
  (void)created;
  std::unique_ptr<rdbms::Transaction> txn = db->Begin();
  STRUCTURA_ASSIGN_OR_RETURN(auto rows, txn->Scan(table));
  for (const auto& [row_id, row] : rows) {
    rdbms::Row migrated(new_schema.columns.size(), rdbms::Value::Null());
    for (size_t i = 0; i < old.columns.size(); ++i) {
      auto it = renamed.find(old.columns[i].name);
      if (it == renamed.end()) continue;
      int dst = new_schema.ColumnIndex(it->second);
      if (dst >= 0) migrated[static_cast<size_t>(dst)] = row[i];
    }
    STRUCTURA_RETURN_IF_ERROR(
        txn->Insert(new_schema.table_name, std::move(migrated)).status());
  }
  STRUCTURA_RETURN_IF_ERROR(txn->Commit());
  return new_schema.table_name;
}

}  // namespace structura::schema
