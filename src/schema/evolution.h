#ifndef STRUCTURA_SCHEMA_EVOLUTION_H_
#define STRUCTURA_SCHEMA_EVOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdbms/database.h"
#include "rdbms/schema.h"

namespace structura::schema {

/// One change to the evolving derived schema.
struct SchemaChange {
  enum class Kind : uint8_t { kAddAttribute, kRenameAttribute, kDropAttribute };
  Kind kind = Kind::kAddAttribute;
  std::string attribute;      // added/dropped name, or rename source
  std::string renamed_to;     // for kRename
  rdbms::ValueType type = rdbms::ValueType::kString;
  uint32_t version = 0;       // version this change produced
  std::string reason;         // free text ("user requested populations")
};

/// The incrementally evolving schema of the derived structure (Part IV).
/// The paper argues structure is generated "in an incremental, best-effort
/// fashion" so "the schema will evolve over time" — this catalog records
/// each version and can answer what existed when.
class EvolvingSchema {
 public:
  explicit EvolvingSchema(std::string name) : name_(std::move(name)) {}

  uint32_t current_version() const { return version_; }
  const std::string& name() const { return name_; }

  /// Adds an attribute; bumps the version. Fails if it already exists.
  Result<uint32_t> AddAttribute(const std::string& attribute,
                                rdbms::ValueType type,
                                std::string reason = "");

  /// Renames an attribute (e.g. unifying "location" and "address" after
  /// schema matching); bumps the version.
  Result<uint32_t> RenameAttribute(const std::string& from,
                                   const std::string& to,
                                   std::string reason = "");

  /// Drops an attribute; bumps the version.
  Result<uint32_t> DropAttribute(const std::string& attribute,
                                 std::string reason = "");

  /// Attributes as of `version` (0 = empty initial schema).
  std::vector<rdbms::Column> AttributesAt(uint32_t version) const;
  std::vector<rdbms::Column> CurrentAttributes() const {
    return AttributesAt(version_);
  }

  bool HasAttribute(const std::string& attribute) const;

  const std::vector<SchemaChange>& history() const { return history_; }

 private:
  std::string name_;
  uint32_t version_ = 0;
  std::vector<SchemaChange> history_;
};

/// Migrates an rdbms table to a new column set: creates a table named
/// `<table>_v<version>` with the evolved columns, copies rows (new columns
/// null, renamed columns carried over, dropped columns discarded) in one
/// transaction. Returns the new table's name. The old table stays — cheap
/// time travel, and the WAL keeps the migration recoverable.
Result<std::string> MigrateTable(rdbms::Database* db,
                                 const std::string& table,
                                 const EvolvingSchema& schema);

}  // namespace structura::schema

#endif  // STRUCTURA_SCHEMA_EVOLUTION_H_
