#include "rdbms/lock_manager.h"

#include <string>
#include <vector>

namespace structura::rdbms {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIntentionShared: return "IS";
    case LockMode::kIntentionExclusive: return "IX";
    case LockMode::kShared: return "S";
    case LockMode::kExclusive: return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  using M = LockMode;
  switch (a) {
    case M::kIntentionShared:
      return b != M::kExclusive;
    case M::kIntentionExclusive:
      return b == M::kIntentionShared || b == M::kIntentionExclusive;
    case M::kShared:
      return b == M::kIntentionShared || b == M::kShared;
    case M::kExclusive:
      return false;
  }
  return false;
}

bool LockCovers(LockMode held, LockMode wanted) {
  using M = LockMode;
  if (held == wanted) return true;
  switch (held) {
    case M::kExclusive:
      return true;
    case M::kShared:
      return wanted == M::kIntentionShared;
    case M::kIntentionExclusive:
      return wanted == M::kIntentionShared;
    case M::kIntentionShared:
      return false;
  }
  return false;
}

bool LockManager::Grantable(const Queue& q, const Request& req) {
  // Only entries AHEAD of `req` matter: granted ones for correctness,
  // waiting ones for FIFO fairness (no overtaking an earlier conflicting
  // waiter). Entries behind `req` must never block it — treating them as
  // blockers lets a later arrival starve the queue head forever.
  // Invariant relied upon: a request is only ever granted when it is
  // compatible with everything ahead of it, so no conflicting *granted*
  // entry can sit behind `req`.
  for (const Request& other : q.requests) {
    if (&other == &req) break;
    if (other.txn == req.txn) continue;
    if (!LockCompatible(other.mode, req.mode)) return false;
  }
  return true;
}

bool LockManager::PromoteWaiters(Queue& q) {
  bool changed = false;
  for (Request& req : q.requests) {
    if (req.granted) continue;
    if (Grantable(q, req)) {
      req.granted = true;
      changed = true;
    } else {
      break;  // FIFO: nothing behind a still-blocked waiter is promoted
    }
  }
  return changed;
}

bool LockManager::WouldDeadlock(TxnId start) const {
  std::vector<TxnId> stack;
  std::unordered_set<TxnId> visited;
  auto it = wait_for_.find(start);
  if (it == wait_for_.end()) return false;
  for (TxnId t : it->second) stack.push_back(t);
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (cur == start) return true;
    if (!visited.insert(cur).second) continue;
    auto edge = wait_for_.find(cur);
    if (edge == wait_for_.end()) continue;
    for (TxnId t : edge->second) stack.push_back(t);
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, const std::string& resource,
                            LockMode mode) {
  std::unique_lock<std::mutex> lock(mutex_);
  Queue& q = queues_[resource];

  // Re-entrancy / upgrade handling.
  bool upgrading = false;
  for (auto it = q.requests.begin(); it != q.requests.end(); ++it) {
    if (it->txn != txn || !it->granted) continue;
    if (LockCovers(it->mode, mode)) return Status::OK();
    // Upgrade: if no other holder conflicts with the stronger mode,
    // strengthen in place.
    bool conflict = false;
    for (const Request& other : q.requests) {
      if (other.txn != txn && other.granted &&
          !LockCompatible(other.mode, mode)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      it->mode = mode;
      return Status::OK();
    }
    // Otherwise KEEP the weaker hold (releasing it would break two-phase
    // locking: a writer could slip between our read and our write — a
    // lost update) and queue the stronger request with upgrade priority.
    // Two transactions upgrading the same resource form a wait-for cycle
    // through their retained S holds; the deadlock detector aborts one.
    upgrading = true;
    break;
  }

  std::list<Request>::iterator mine_it;
  if (upgrading) {
    // Upgrade priority: insert right after the last granted entry, ahead
    // of fresh waiters (which may themselves be blocked on our S hold).
    auto insert_pos = q.requests.begin();
    for (auto jt = q.requests.begin(); jt != q.requests.end(); ++jt) {
      if (jt->granted) insert_pos = std::next(jt);
    }
    mine_it = q.requests.insert(insert_pos, Request{txn, mode, false});
  } else {
    q.requests.push_back(Request{txn, mode, false});
    mine_it = std::prev(q.requests.end());
  }
  Request& mine = *mine_it;
  while (true) {
    // `mine.granted` may have been set by a PromoteWaiters run while we
    // slept; it must win over re-deriving grantability, because newer
    // incompatible waiters queued *behind* us make Grantable() false
    // again even though we already hold the lock.
    if (mine.granted || Grantable(q, mine)) {
      mine.granted = true;
      wait_for_.erase(txn);
      // A compatible later waiter may also proceed now.
      if (PromoteWaiters(q)) released_.notify_all();
      return Status::OK();
    }
    std::unordered_set<TxnId>& edges = wait_for_[txn];
    edges.clear();
    for (const Request& other : q.requests) {
      if (&other == &mine) break;   // only entries ahead of us block us
      if (other.txn == txn) continue;  // our own retained weaker hold
      if (!LockCompatible(other.mode, mode)) edges.insert(other.txn);
    }
    if (WouldDeadlock(txn)) {
      wait_for_.erase(txn);
      q.requests.remove_if(
          [&](const Request& r) { return r.txn == txn && !r.granted; });
      PromoteWaiters(q);
      released_.notify_all();
      return Status::Aborted("deadlock detected on " + resource);
    }
    released_.wait(lock);
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lock(mutex_);
  wait_for_.erase(txn);
  bool changed = false;
  for (auto& [name, q] : queues_) {
    size_t before = q.requests.size();
    q.requests.remove_if([&](const Request& r) { return r.txn == txn; });
    if (q.requests.size() != before) {
      changed = true;
      PromoteWaiters(q);
    }
  }
  if (changed) released_.notify_all();
}

std::string LockManager::DebugString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, q] : queues_) {
    if (q.requests.empty()) continue;
    out += name + ":";
    for (const Request& r : q.requests) {
      out += " txn" + std::to_string(r.txn);
      out += "/";
      out += LockModeName(r.mode);
      out += r.granted ? "(G)" : "(W)";
    }
    out += "\n";
  }
  for (const auto& [txn, edges] : wait_for_) {
    out += "wait_for txn" + std::to_string(txn) + " -> {";
    for (TxnId t : edges) out += " txn" + std::to_string(t);
    out += " }\n";
  }
  return out;
}

size_t LockManager::ActiveResources() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t n = 0;
  for (const auto& [name, q] : queues_) {
    if (!q.requests.empty()) ++n;
  }
  return n;
}

}  // namespace structura::rdbms
