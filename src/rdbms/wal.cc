#include "rdbms/wal.h"

#include <cstdlib>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/strings.h"

namespace structura::rdbms {
namespace {

const char* TypeTag(LogRecord::Type t) {
  switch (t) {
    case LogRecord::Type::kBegin: return "B";
    case LogRecord::Type::kCommit: return "C";
    case LogRecord::Type::kAbort: return "A";
    case LogRecord::Type::kInsert: return "I";
    case LogRecord::Type::kUpdate: return "U";
    case LogRecord::Type::kDelete: return "D";
    case LogRecord::Type::kCreateTable: return "T";
    case LogRecord::Type::kCreateIndex: return "X";
    case LogRecord::Type::kDropTable: return "P";
    case LogRecord::Type::kCheckpoint: return "K";
  }
  return "?";
}

Result<LogRecord::Type> TypeFromTag(char tag) {
  switch (tag) {
    case 'B': return LogRecord::Type::kBegin;
    case 'C': return LogRecord::Type::kCommit;
    case 'A': return LogRecord::Type::kAbort;
    case 'I': return LogRecord::Type::kInsert;
    case 'U': return LogRecord::Type::kUpdate;
    case 'D': return LogRecord::Type::kDelete;
    case 'T': return LogRecord::Type::kCreateTable;
    case 'X': return LogRecord::Type::kCreateIndex;
    case 'P': return LogRecord::Type::kDropTable;
    case 'K': return LogRecord::Type::kCheckpoint;
    default: return Status::Corruption("unknown log record tag");
  }
}

/// Appends "<len>:<bytes>" framing.
void AppendFramed(std::string_view bytes, std::string* out) {
  out->append(StrFormat("%zu:", bytes.size()));
  out->append(bytes);
}

Result<std::string> ReadFramed(const std::string& data, size_t* pos) {
  size_t colon = data.find(':', *pos);
  if (colon == std::string::npos) {
    return Status::Corruption("bad frame length");
  }
  int64_t len = 0;
  if (!ParseInt64(data.substr(*pos, colon - *pos), &len) || len < 0 ||
      colon + 1 + static_cast<size_t>(len) > data.size()) {
    return Status::Corruption("bad frame length");
  }
  *pos = colon + 1 + static_cast<size_t>(len);
  return data.substr(colon + 1, static_cast<size_t>(len));
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path));
  wal->out_.open(path, std::ios::binary | std::ios::app);
  if (!wal->out_) return Status::Internal("cannot open wal: " + path);
  return wal;
}

std::string WriteAheadLog::Encode(const LogRecord& r) {
  std::string payload;
  payload += TypeTag(r.type);
  payload += StrFormat(" %llu ", static_cast<unsigned long long>(r.txn));
  AppendFramed(r.table, &payload);
  payload += StrFormat(" %llu ", static_cast<unsigned long long>(r.row_id));
  std::string before, after;
  AppendRowTo(r.before, &before);
  AppendRowTo(r.after, &after);
  AppendFramed(before, &payload);
  AppendFramed(after, &payload);
  AppendFramed(r.payload, &payload);
  return payload;
}

Result<LogRecord> WriteAheadLog::Decode(const std::string& payload) {
  LogRecord r;
  if (payload.size() < 4) return Status::Corruption("short log record");
  STRUCTURA_ASSIGN_OR_RETURN(r.type, TypeFromTag(payload[0]));
  size_t pos = 2;
  size_t space = payload.find(' ', pos);
  if (space == std::string::npos) return Status::Corruption("bad txn id");
  int64_t txn = 0;
  if (!ParseInt64(payload.substr(pos, space - pos), &txn)) {
    return Status::Corruption("bad txn id");
  }
  r.txn = static_cast<TxnId>(txn);
  pos = space + 1;
  STRUCTURA_ASSIGN_OR_RETURN(r.table, ReadFramed(payload, &pos));
  if (pos >= payload.size() || payload[pos] != ' ') {
    return Status::Corruption("bad row id separator");
  }
  ++pos;
  space = payload.find(' ', pos);
  if (space == std::string::npos) return Status::Corruption("bad row id");
  int64_t row_id = 0;
  if (!ParseInt64(payload.substr(pos, space - pos), &row_id)) {
    return Status::Corruption("bad row id");
  }
  r.row_id = static_cast<RowId>(row_id);
  pos = space + 1;
  STRUCTURA_ASSIGN_OR_RETURN(std::string before, ReadFramed(payload, &pos));
  STRUCTURA_ASSIGN_OR_RETURN(std::string after, ReadFramed(payload, &pos));
  STRUCTURA_ASSIGN_OR_RETURN(r.payload, ReadFramed(payload, &pos));
  size_t bpos = 0, apos = 0;
  STRUCTURA_ASSIGN_OR_RETURN(r.before, ParseRowFrom(before, &bpos));
  STRUCTURA_ASSIGN_OR_RETURN(r.after, ParseRowFrom(after, &apos));
  return r;
}

Status WriteAheadLog::Append(const LogRecord& record) {
  STRUCTURA_FAILPOINT("wal.append");
  std::string payload = Encode(record);
  // Frame: "<checksum> <len>\n<payload>\n".
  std::string framed = StrFormat(
      "%llu %zu\n", static_cast<unsigned long long>(Fnv1a64(payload)),
      payload.size());
  framed += payload;
  framed += '\n';
  if (Status torn = MaybeFail("wal.append.torn"); !torn.ok()) {
    // Simulated crash mid-write: only a prefix of the frame reaches the
    // file. ReadAll must detect and ignore this tail at recovery.
    out_.write(framed.data(),
               static_cast<std::streamsize>(framed.size() / 2));
    out_.flush();
    return torn;
  }
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out_) return Status::Internal("wal write failed");
  ++appended_;
  if (record.type == LogRecord::Type::kCommit) return Flush();
  return Status::OK();
}

Status WriteAheadLog::Flush() {
  STRUCTURA_FAILPOINT("wal.flush");
  out_.flush();
  return out_ ? Status::OK() : Status::Internal("wal flush failed");
}

Result<std::vector<LogRecord>> WriteAheadLog::ReadAll(
    const std::string& path) {
  std::vector<LogRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) return records;  // no log yet: empty history
  std::string header;
  while (std::getline(in, header)) {
    size_t space = header.find(' ');
    if (space == std::string::npos) break;
    int64_t len = 0;
    uint64_t checksum = 0;
    {
      int64_t cs = 0;
      // Checksums are 64-bit; parse as unsigned via strtoull.
      char* end = nullptr;
      checksum = std::strtoull(header.c_str(), &end, 10);
      if (end != header.c_str() + space) break;
      if (!ParseInt64(header.substr(space + 1), &len) || len < 0) break;
      (void)cs;
    }
    std::string payload(static_cast<size_t>(len), '\0');
    if (!in.read(payload.data(), len)) break;  // torn tail
    char nl = 0;
    if (!in.get(nl) || nl != '\n') break;
    if (Fnv1a64(payload) != checksum) break;  // corrupt tail
    Result<LogRecord> rec = Decode(payload);
    if (!rec.ok()) break;
    records.push_back(std::move(*rec));
  }
  return records;
}

Status WriteAheadLog::Reset() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) return Status::Internal("wal reset failed");
  appended_ = 0;
  return Status::OK();
}

}  // namespace structura::rdbms
