#include "rdbms/wal.h"

#include <chrono>
#include <fstream>
#include <iterator>

#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::rdbms {
namespace {

struct WalMetrics {
  obs::Counter* appends;
  obs::Counter* flushes;
  obs::Counter* syncs;
  obs::Histogram* append_ns;
  obs::Histogram* flush_ns;
  obs::Histogram* sync_ns;
};
WalMetrics& Metrics() {
  static WalMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    return WalMetrics{
        r.GetCounter("storage.wal.appends"),
        r.GetCounter("storage.wal.flushes"),
        r.GetCounter("storage.wal.syncs"),
        r.GetHistogram("storage.wal.append_ns"),
        r.GetHistogram("storage.wal.flush_ns"),
        r.GetHistogram("storage.wal.sync_ns"),
    };
  }();
  return m;
}

const char* TypeTag(LogRecord::Type t) {
  switch (t) {
    case LogRecord::Type::kBegin: return "B";
    case LogRecord::Type::kCommit: return "C";
    case LogRecord::Type::kAbort: return "A";
    case LogRecord::Type::kInsert: return "I";
    case LogRecord::Type::kUpdate: return "U";
    case LogRecord::Type::kDelete: return "D";
    case LogRecord::Type::kCreateTable: return "T";
    case LogRecord::Type::kCreateIndex: return "X";
    case LogRecord::Type::kDropTable: return "P";
    case LogRecord::Type::kCheckpoint: return "K";
  }
  return "?";
}

Result<LogRecord::Type> TypeFromTag(char tag) {
  switch (tag) {
    case 'B': return LogRecord::Type::kBegin;
    case 'C': return LogRecord::Type::kCommit;
    case 'A': return LogRecord::Type::kAbort;
    case 'I': return LogRecord::Type::kInsert;
    case 'U': return LogRecord::Type::kUpdate;
    case 'D': return LogRecord::Type::kDelete;
    case 'T': return LogRecord::Type::kCreateTable;
    case 'X': return LogRecord::Type::kCreateIndex;
    case 'P': return LogRecord::Type::kDropTable;
    case 'K': return LogRecord::Type::kCheckpoint;
    default: return Status::Corruption("unknown log record tag");
  }
}

/// Appends "<len>:<bytes>" framing.
void AppendFramed(std::string_view bytes, std::string* out) {
  out->append(StrFormat("%zu:", bytes.size()));
  out->append(bytes);
}

Result<std::string> ReadFramed(const std::string& data, size_t* pos) {
  size_t colon = data.find(':', *pos);
  if (colon == std::string::npos) {
    return Status::Corruption("bad frame length");
  }
  int64_t len = 0;
  if (!ParseInt64(data.substr(*pos, colon - *pos), &len) || len < 0 ||
      colon + 1 + static_cast<size_t>(len) > data.size()) {
    return Status::Corruption("bad frame length");
  }
  *pos = colon + 1 + static_cast<size_t>(len);
  return data.substr(colon + 1, static_cast<size_t>(len));
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  return Open(path, WalOptions{});
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalOptions options) {
  std::unique_ptr<WriteAheadLog> wal(new WriteAheadLog(path, options));
  std::lock_guard<std::mutex> lock(wal->sync_mutex_);
  STRUCTURA_RETURN_IF_ERROR(wal->OpenFileLocked(/*truncate=*/false));
  return wal;
}

Status WriteAheadLog::OpenFileLocked(bool truncate) {
  Env* env = options_.env != nullptr ? options_.env : Env::Default();
  STRUCTURA_ASSIGN_OR_RETURN(file_, env->NewWritableFile(path_, truncate));
  // A freshly created log file exists only in its directory's entry;
  // without a directory fsync a power cut can vanish the whole log, no
  // matter how many times its contents were fsynced. Opening an
  // existing file makes this a cheap no-op-equivalent.
  size_t slash = path_.rfind('/');
  std::string parent =
      slash == std::string::npos ? std::string(".") : path_.substr(0, slash);
  return env->SyncDir(parent);
}

std::string WriteAheadLog::Encode(const LogRecord& r) {
  std::string payload;
  payload += TypeTag(r.type);
  payload += StrFormat(" %llu ", static_cast<unsigned long long>(r.txn));
  AppendFramed(r.table, &payload);
  payload += StrFormat(" %llu ", static_cast<unsigned long long>(r.row_id));
  std::string before, after;
  AppendRowTo(r.before, &before);
  AppendRowTo(r.after, &after);
  AppendFramed(before, &payload);
  AppendFramed(after, &payload);
  AppendFramed(r.payload, &payload);
  return payload;
}

Result<LogRecord> WriteAheadLog::Decode(const std::string& payload) {
  LogRecord r;
  if (payload.size() < 4) return Status::Corruption("short log record");
  STRUCTURA_ASSIGN_OR_RETURN(r.type, TypeFromTag(payload[0]));
  size_t pos = 2;
  size_t space = payload.find(' ', pos);
  if (space == std::string::npos) return Status::Corruption("bad txn id");
  int64_t txn = 0;
  if (!ParseInt64(payload.substr(pos, space - pos), &txn)) {
    return Status::Corruption("bad txn id");
  }
  r.txn = static_cast<TxnId>(txn);
  pos = space + 1;
  STRUCTURA_ASSIGN_OR_RETURN(r.table, ReadFramed(payload, &pos));
  if (pos >= payload.size() || payload[pos] != ' ') {
    return Status::Corruption("bad row id separator");
  }
  ++pos;
  space = payload.find(' ', pos);
  if (space == std::string::npos) return Status::Corruption("bad row id");
  int64_t row_id = 0;
  if (!ParseInt64(payload.substr(pos, space - pos), &row_id)) {
    return Status::Corruption("bad row id");
  }
  r.row_id = static_cast<RowId>(row_id);
  pos = space + 1;
  STRUCTURA_ASSIGN_OR_RETURN(std::string before, ReadFramed(payload, &pos));
  STRUCTURA_ASSIGN_OR_RETURN(std::string after, ReadFramed(payload, &pos));
  STRUCTURA_ASSIGN_OR_RETURN(r.payload, ReadFramed(payload, &pos));
  size_t bpos = 0, apos = 0;
  STRUCTURA_ASSIGN_OR_RETURN(r.before, ParseRowFrom(before, &bpos));
  STRUCTURA_ASSIGN_OR_RETURN(r.after, ParseRowFrom(after, &apos));
  return r;
}

Result<uint64_t> WriteAheadLog::AppendRecord(const LogRecord& record) {
  TRACE_SPAN("wal.append");
  WalMetrics& wm = Metrics();
  wm.appends->Increment();
  obs::ScopedLatency latency(wm.append_ns);
  STRUCTURA_FAILPOINT("wal.append");
  WritableFile* file = nullptr;
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    if (file_ == nullptr) {
      return Status::IoError("wal has no open file: " + path_);
    }
    if (file_->failed()) {
      NoteStickyLocked();
      return file_->sticky_status();
    }
    file = file_.get();
  }
  std::string framed = FrameRecord(Encode(record));
  // Deterministic bit-rot injection over the framed bytes (header or
  // payload); the write below still "succeeds".
  STRUCTURA_RETURN_IF_ERROR(MaybeCorrupt("wal.frame", &framed));
  if (Status torn = MaybeFail("wal.append.torn"); !torn.ok()) {
    // Simulated crash mid-write: only a prefix of the frame reaches the
    // file. ReadAll must detect and ignore this tail at recovery.
    file->Append(std::string_view(framed).substr(0, framed.size() / 2));
    file->Flush();
    return torn;
  }
  STRUCTURA_RETURN_IF_ERROR(file->Append(framed));
  obs::ChargeCost(obs::CostDim::kWalBytesAppended, framed.size());
  ++appended_;
  std::lock_guard<std::mutex> lock(sync_mutex_);
  return ++written_lsn_;
}

Status WriteAheadLog::Append(const LogRecord& record) {
  STRUCTURA_ASSIGN_OR_RETURN(uint64_t ticket, AppendRecord(record));
  if (record.type == LogRecord::Type::kCommit) return WaitDurable(ticket);
  return Status::OK();
}

Status WriteAheadLog::WaitDurable(uint64_t ticket) {
  if (options_.sync_policy == WalSyncPolicy::kOff) return Status::OK();
  return SyncTo(ticket);
}

Status WriteAheadLog::Sync() {
  uint64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    target = written_lsn_;
  }
  return SyncTo(target);
}

Status WriteAheadLog::SyncTo(uint64_t ticket) {
  std::unique_lock<std::mutex> lock(sync_mutex_);
  const uint64_t epoch = epoch_;
  for (;;) {
    if (epoch_ != epoch) {
      // The log was Reset() while we waited: a durable checkpoint now
      // covers every record our ticket refers to.
      return Status::OK();
    }
    // A ticket the durable LSN already covers is acknowledged even if a
    // LATER append latched the file sticky: its record is fsynced, and
    // refusing it would roll back in memory a commit that a crash would
    // then resurrect from the log.
    if (durable_lsn_ >= ticket) return Status::OK();
    if (file_ == nullptr) {
      return Status::IoError("wal has no open file: " + path_);
    }
    if (file_->failed()) {
      NoteStickyLocked();
      return file_->sticky_status();
    }
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
      continue;
    }
    // Become the sync leader. Under kGroupCommit, linger briefly so
    // commits racing in behind us ride this same fsync.
    sync_in_progress_ = true;
    if (options_.sync_policy == WalSyncPolicy::kGroupCommit &&
        options_.group_commit_window_us > 0) {
      Clock::OrReal(options_.clock)
          ->WaitFor(sync_cv_, lock,
                    static_cast<int64_t>(options_.group_commit_window_us) *
                        1'000);
    }
    WritableFile* file = file_.get();
    const uint64_t target = written_lsn_;
    lock.unlock();
    WalMetrics& wm = Metrics();
    wm.syncs->Increment();
    Status synced = MaybeFail("wal.flush");
    if (synced.ok()) {
      obs::ScopedLatency latency(wm.sync_ns);
      synced = file->Sync();
    }
    lock.lock();
    sync_in_progress_ = false;
    if (synced.ok() && epoch_ == epoch && target > durable_lsn_) {
      durable_lsn_ = target;
    }
    if (!synced.ok() && file_ != nullptr && file_->failed()) {
      // Real fsync failure (not an injected leader-only one): the file
      // is now latched sticky.
      NoteStickyLocked();
    }
    sync_cv_.notify_all();
    if (!synced.ok()) {
      // A real fsync failure latched the file sticky and every waiter
      // sees it above; an injected (failpoint) failure fails only this
      // leader — followers retry with their own evaluation.
      return synced;
    }
  }
}

Status WriteAheadLog::Flush() {
  TRACE_SPAN("wal.flush");
  WalMetrics& wm = Metrics();
  wm.flushes->Increment();
  obs::ScopedLatency latency(wm.flush_ns);
  STRUCTURA_FAILPOINT("wal.flush");
  WritableFile* file = nullptr;
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    if (file_ == nullptr) {
      return Status::IoError("wal has no open file: " + path_);
    }
    if (file_->failed()) {
      NoteStickyLocked();
      return file_->sticky_status();
    }
    file = file_.get();
  }
  return file->Flush();
}

Result<WalReadResult> WriteAheadLog::ReadAll(const std::string& path) {
  WalReadResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // no log yet: empty history
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  FrameReader reader(data);
  bool pending_gap = false;
  while (std::optional<FrameReader::Frame> frame = reader.Next()) {
    Result<LogRecord> rec = Decode(std::string(frame->payload));
    if (!rec.ok()) {
      // Checksums validated but the payload does not parse: treat it as
      // a damaged frame so spanning transactions are dropped atomically.
      ++out.undecodable_frames;
      pending_gap = true;
      continue;
    }
    if (frame->after_damage || pending_gap) {
      out.gaps.push_back(out.records.size());
      pending_gap = false;
    }
    out.records.push_back(std::move(*rec));
  }
  out.frames = reader.report();
  return out;
}

Status WriteAheadLog::Scrub(const std::string& path,
                            IntegrityCounters* counters) {
  STRUCTURA_ASSIGN_OR_RETURN(WalReadResult result, ReadAll(path));
  counters->records_verified += result.records.size();
  counters->corrupt_records +=
      result.frames.damaged_regions + result.undecodable_frames +
      (result.frames.torn_tail ? 1 : 0);
  counters->salvaged_records += result.frames.frames_salvaged;
  counters->torn_tail_bytes += result.frames.torn_tail_bytes;
  return Status::OK();
}

Status WriteAheadLog::Reset() {
  std::unique_lock<std::mutex> lock(sync_mutex_);
  sync_cv_.wait(lock, [&] { return !sync_in_progress_; });
  // The old handle — sticky-failed or healthy — is superseded by the
  // checkpoint that triggered this reset; drop it and start fresh.
  file_.reset();
  Status opened = OpenFileLocked(/*truncate=*/true);
  // Make the truncation itself durable: until an fsync covers it, a
  // power cut can bring the entire superseded log back from the dead.
  if (opened.ok()) opened = file_->Sync();
  appended_ = 0;
  written_lsn_ = 0;
  durable_lsn_ = 0;
  ++epoch_;
  sticky_event_recorded_ = false;
  sync_cv_.notify_all();
  return opened;
}

bool WriteAheadLog::Failed() const {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  return file_ == nullptr || file_->failed();
}

Status WriteAheadLog::FailedStatus() const {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  if (file_ == nullptr) {
    return Status::IoError("wal has no open file: " + path_);
  }
  return file_->sticky_status();
}

uint64_t WriteAheadLog::LastLsn() const {
  std::lock_guard<std::mutex> lock(sync_mutex_);
  return written_lsn_;
}

void WriteAheadLog::NoteStickyLocked() {
  if (sticky_event_recorded_) return;
  sticky_event_recorded_ = true;
  obs::RecordEvent(obs::EventCategory::kWal, obs::EventCode::kWalStickyLatch,
                   epoch_, written_lsn_, durable_lsn_, "wal write path latched");
}

}  // namespace structura::rdbms
