#ifndef STRUCTURA_RDBMS_VALUE_H_
#define STRUCTURA_RDBMS_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace structura::rdbms {

enum class ValueType : uint8_t { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

/// A dynamically typed relational value. Comparison across kInt and
/// kDouble is numeric; nulls order before everything (SQL-ish but total,
/// so values can key ordered indexes).
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: kInt and kDouble convert; other types return false.
  bool ToNumber(double* out) const;

  /// Total order: null < numbers (numeric order) < strings (lexicographic).
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  std::string ToString() const;

  /// Serialization used by the WAL: "<t>:<len>:<bytes>". Appends to `out`.
  void AppendTo(std::string* out) const;
  /// Parses one serialized value starting at `*pos`; advances `*pos`.
  static Result<Value> ParseFrom(const std::string& data, size_t* pos);

  uint64_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator!=(const Value& a, const Value& b) {
    return a.Compare(b) != 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_VALUE_H_
