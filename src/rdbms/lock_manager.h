#ifndef STRUCTURA_RDBMS_LOCK_MANAGER_H_
#define STRUCTURA_RDBMS_LOCK_MANAGER_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"

namespace structura::rdbms {

using TxnId = uint64_t;

/// Hierarchical lock modes. Tables take intention locks (IS/IX) while the
/// rows beneath take S/X; scans take table-level S, which conflicts with
/// any writer's IX and thereby prevents phantoms.
enum class LockMode : uint8_t {
  kIntentionShared,
  kIntentionExclusive,
  kShared,
  kExclusive,
};

const char* LockModeName(LockMode mode);

/// True when a holder of `held` already has every right `wanted` grants.
bool LockCovers(LockMode held, LockMode wanted);

/// Standard multigranularity compatibility matrix.
bool LockCompatible(LockMode a, LockMode b);

/// Strict two-phase-locking lock table with wait-for-graph deadlock
/// detection. Resources are opaque strings (the database uses
/// "t:<table>" for table locks and "r:<table>:<rowid>" for row locks).
/// A transaction whose wait would close a cycle is aborted (it gets
/// kAborted back and must roll back).
class LockManager {
 public:
  LockManager() = default;
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Blocks until the lock is granted. Re-entrant: a held mode covering
  /// the request returns immediately; otherwise the request is treated as
  /// an upgrade. Returns kAborted on deadlock.
  Status Acquire(TxnId txn, const std::string& resource, LockMode mode);

  /// Releases every lock `txn` holds and cancels its waits (strict 2PL:
  /// called once at commit/abort).
  void ReleaseAll(TxnId txn);

  /// Number of resources with at least one holder or waiter (test hook).
  size_t ActiveResources() const;

  /// Human-readable dump of all non-empty queues and wait-for edges
  /// (diagnostics; also used by the system monitor).
  std::string DebugString() const;

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool granted = false;
  };
  struct Queue {
    std::list<Request> requests;
  };

  static bool Grantable(const Queue& q, const Request& req);
  /// Grants whatever became grantable; returns true if anything changed
  /// (callers must then notify, or promoted sleepers never wake).
  static bool PromoteWaiters(Queue& q);
  bool WouldDeadlock(TxnId start) const;

  mutable std::mutex mutex_;
  std::condition_variable released_;
  std::unordered_map<std::string, Queue> queues_;
  /// txn -> txns it is currently waiting for (rebuilt while waiting).
  std::unordered_map<TxnId, std::unordered_set<TxnId>> wait_for_;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_LOCK_MANAGER_H_
