#ifndef STRUCTURA_RDBMS_TABLE_H_
#define STRUCTURA_RDBMS_TABLE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdbms/btree.h"
#include "rdbms/schema.h"

namespace structura::rdbms {

/// Heap table: rows live in slots addressed by RowId; deleted slots become
/// tombstones. Secondary B+-tree indexes are kept in sync on every
/// mutation. Thread safety is provided above this layer by the lock
/// manager — Table itself has a single internal mutex-free design and
/// relies on callers holding appropriate locks.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.table_name; }

  /// Appends a row; returns its RowId. Row arity must match the schema.
  Result<RowId> Insert(Row row);

  /// Places a row at a specific slot (recovery replay / checkpoint load).
  /// Extends the slot array as needed; fails if the slot is occupied.
  Status InsertAt(RowId id, Row row);

  Result<Row> Get(RowId id) const;
  Status Update(RowId id, Row row);
  Status Delete(RowId id);

  /// Invokes `fn` for every live row in RowId order.
  void Scan(const std::function<void(RowId, const Row&)>& fn) const;

  /// Creates a secondary index on `column` (errors if it exists or the
  /// column is unknown). Existing rows are indexed immediately.
  Status CreateIndex(const std::string& column);
  bool HasIndex(const std::string& column) const;

  /// RowIds whose `column` equals `key` (empty when no such index —
  /// callers should fall back to Scan).
  Result<std::vector<RowId>> IndexLookup(const std::string& column,
                                         const Value& key) const;
  /// RowIds with lo <= column <= hi via the index.
  Result<std::vector<RowId>> IndexRange(const std::string& column,
                                        const Value* lo,
                                        const Value* hi) const;

  size_t LiveRowCount() const { return live_rows_; }
  size_t SlotCount() const { return slots_.size(); }

 private:
  Status ValidateRow(const Row& row) const;
  void IndexInsert(RowId id, const Row& row);
  void IndexErase(RowId id, const Row& row);

  TableSchema schema_;
  std::vector<std::optional<Row>> slots_;
  size_t live_rows_ = 0;
  std::map<std::string, std::unique_ptr<BTreeIndex>> indexes_;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_TABLE_H_
