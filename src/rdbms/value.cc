#include "rdbms/value.h"

#include <cmath>

#include "common/hash.h"
#include "common/strings.h"

namespace structura::rdbms {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "?";
}

bool Value::ToNumber(double* out) const {
  switch (type()) {
    case ValueType::kInt:
      *out = static_cast<double>(as_int());
      return true;
    case ValueType::kDouble:
      *out = as_double();
      return true;
    default:
      return false;
  }
}

int Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kDouble: return 1;
      case ValueType::kString: return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b) ? -1 : 1;
  switch (rank(a)) {
    case 0:
      return 0;  // null == null under this total order
    case 1: {
      double x = 0, y = 0;
      ToNumber(&x);
      other.ToNumber(&y);
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    default: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return StrFormat("%lld", static_cast<long long>(as_int()));
    case ValueType::kDouble: {
      double v = as_double();
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        return StrFormat("%.1f", v);
      }
      return StrFormat("%g", v);
    }
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

void Value::AppendTo(std::string* out) const {
  switch (type()) {
    case ValueType::kNull:
      out->append("n:0:");
      break;
    case ValueType::kInt: {
      std::string s = StrFormat("%lld", static_cast<long long>(as_int()));
      out->append(StrFormat("i:%zu:", s.size()));
      out->append(s);
      break;
    }
    case ValueType::kDouble: {
      std::string s = StrFormat("%.17g", as_double());
      out->append(StrFormat("d:%zu:", s.size()));
      out->append(s);
      break;
    }
    case ValueType::kString:
      out->append(StrFormat("s:%zu:", as_string().size()));
      out->append(as_string());
      break;
  }
}

Result<Value> Value::ParseFrom(const std::string& data, size_t* pos) {
  if (*pos + 1 >= data.size() || data[*pos + 1] != ':') {
    return Status::Corruption("bad value tag");
  }
  char tag = data[*pos];
  size_t len_start = *pos + 2;
  size_t colon = data.find(':', len_start);
  if (colon == std::string::npos) {
    return Status::Corruption("bad value length");
  }
  int64_t len = 0;
  if (!ParseInt64(data.substr(len_start, colon - len_start), &len) ||
      len < 0 || colon + 1 + static_cast<size_t>(len) > data.size()) {
    return Status::Corruption("bad value length");
  }
  std::string body = data.substr(colon + 1, static_cast<size_t>(len));
  *pos = colon + 1 + static_cast<size_t>(len);
  switch (tag) {
    case 'n':
      return Value::Null();
    case 'i': {
      int64_t v = 0;
      if (!ParseInt64(body, &v)) return Status::Corruption("bad int body");
      return Value::Int(v);
    }
    case 'd': {
      double v = 0;
      if (!ParseDouble(body, &v)) {
        return Status::Corruption("bad double body");
      }
      return Value::Double(v);
    }
    case 's':
      return Value::Str(std::move(body));
    default:
      return Status::Corruption("unknown value tag");
  }
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt:
      return HashCombine(1, static_cast<uint64_t>(as_int()));
    case ValueType::kDouble: {
      double v = as_double();
      // Hash doubles that equal integers the same as the integer, to match
      // the numeric Compare semantics.
      if (v == std::floor(v) && std::abs(v) < 9.2e18) {
        return HashCombine(1, static_cast<uint64_t>(
                                  static_cast<int64_t>(v)));
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      return HashCombine(2, bits);
    }
    case ValueType::kString:
      return HashCombine(3, Fnv1a64(as_string()));
  }
  return 0;
}

}  // namespace structura::rdbms
