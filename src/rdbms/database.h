#ifndef STRUCTURA_RDBMS_DATABASE_H_
#define STRUCTURA_RDBMS_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "rdbms/lock_manager.h"
#include "rdbms/table.h"
#include "rdbms/wal.h"

namespace structura::rdbms {

class Transaction;

struct DatabaseOptions {
  /// Directory for the WAL and checkpoint. Empty = ephemeral in-memory
  /// database (no durability, still transactional).
  std::string dir;
  /// WAL sync policy and I/O environment. The env (nullptr =
  /// Env::Default()) is also used for the checkpoint's atomic
  /// tmp+rename+dir-sync replacement.
  WalOptions wal;
};

/// The relational engine that stores the *final* structured data — the
/// paper's Part III argument: once many users edit the derived structure
/// concurrently, you want real transactions, concurrency control, and
/// crash recovery under it (Section 4).
///
/// Durability model: redo WAL with commit-time flush; recovery replays
/// committed transactions on top of the latest checkpoint. In-flight
/// transactions at crash time simply never happened (no-steal: dirty
/// state lives only in memory).
class Database {
 public:
  /// Opens (and, when `options.dir` is non-empty, recovers) a database.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table. Auto-committed DDL: logged immediately.
  Result<Table*> CreateTable(const TableSchema& schema);

  /// Creates a secondary index. Auto-committed DDL.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Drops a table and its indexes. Auto-committed DDL; fails while any
  /// transaction holds locks on the table.
  Status DropTable(const std::string& table);

  Table* GetTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// Starts a transaction. The returned object must see Commit or Abort
  /// before destruction (the destructor aborts as a safety net).
  std::unique_ptr<Transaction> Begin();

  /// Writes a full checkpoint (with a CRC32C footer) via atomic
  /// tmp+fsync+rename+dir-sync replacement, then truncates the WAL.
  /// Quiesces foreground writers first — a shared lock on every table
  /// waits out in-flight writing transactions — so the image is
  /// transactionally consistent and safe to take under live traffic
  /// (blocks until writers drain; may return kAborted as a deadlock
  /// victim, in which case the caller should retry).
  /// Because Reset() opens a fresh WAL file handle, a successful
  /// checkpoint is also the healing step for a sticky-failed WAL: the
  /// failed records were never acknowledged, and the durable checkpoint
  /// now captures the authoritative state.
  Status Checkpoint();

  /// True while the WAL is sticky-failed (a write or fsync failed):
  /// every commit and DDL is being refused with the original error
  /// until a successful Checkpoint() heals it. Always false for an
  /// ephemeral database.
  bool WalFailed() const { return wal_ != nullptr && wal_->Failed(); }
  /// The WAL's sticky error (OK when healthy/ephemeral).
  Status WalFailedStatus() const {
    return wal_ ? wal_->FailedStatus() : Status::OK();
  }

  /// What the last Open()/Recover() found: records replayed, damaged
  /// frames salvaged around, transactions dropped, checkpoints
  /// rejected. All zeros for a clean open.
  const IntegrityCounters& recovery_report() const { return recovery_; }

  /// Verifies every byte of the on-disk state — checkpoint footer and
  /// all WAL frames — without modifying anything, folding findings into
  /// `counters`. A no-op for an ephemeral database.
  Status Scrub(IntegrityCounters* counters);

  LockManager& lock_manager() { return locks_; }
  size_t wal_records() const { return wal_ ? wal_->AppendedRecords() : 0; }

  /// Called after every *successful* commit (and every auto-committed
  /// DDL) with the distinct table names the operation touched. Fires at
  /// the durable-success point only — an aborted transaction, or a
  /// commit whose WAL acknowledgement failed, never notifies. The
  /// System wires this to the query result cache's epoch map so a
  /// committed write invalidates cached results in O(1). The listener
  /// runs on the committing thread and must not call back into the
  /// database. Pass nullptr to detach (required before destroying
  /// whatever the listener captures).
  using CommitListener = std::function<void(const std::vector<std::string>&)>;
  void SetCommitListener(CommitListener listener) {
    std::lock_guard<std::mutex> lock(commit_listener_mutex_);
    commit_listener_ = std::move(listener);
  }

 private:
  friend class Transaction;

  explicit Database(DatabaseOptions options)
      : options_(std::move(options)) {}

  Env* env() const {
    return options_.wal.env != nullptr ? options_.wal.env : Env::Default();
  }

  /// Invokes the commit listener (if set) with `tables`. No-op on an
  /// empty list.
  void NotifyCommit(const std::vector<std::string>& tables);

  Status Recover();
  /// Checkpoint body; the public Checkpoint() holds shared locks on
  /// every table in `locked` around this call so the image is
  /// transactionally consistent and the WAL reset admits no
  /// interleaved commit. Sets `*raced` (and writes nothing) when a
  /// table not in `locked` appeared — the caller locks it and retries.
  Status CheckpointQuiesced(const std::unordered_set<std::string>& locked,
                            bool* raced);
  Status LoadCheckpoint(const std::string& path);
  /// Appends the kCheckpoint epoch marker (payload: checkpoint_seq_)
  /// as the first record of a freshly Reset() WAL. Caller holds
  /// wal_mutex_.
  Status StampWalMarkerLocked();
  /// Replays committed transactions. When `salvage` is set (the log had
  /// damaged regions or the checkpoint was rejected), records that no
  /// longer apply (e.g. writes to a table whose DDL was lost) are
  /// skipped and counted instead of failing recovery.
  Status ApplyCommitted(const WalReadResult& log, bool salvage);
  std::string WalPath() const { return options_.dir + "/wal.log"; }
  std::string CheckpointPath() const {
    return options_.dir + "/checkpoint";
  }

  struct TableEntry {
    std::unique_ptr<Table> table;
    /// Short physical latch serializing structural access to the heap;
    /// logical isolation is the lock manager's job.
    std::mutex latch;
  };
  TableEntry* FindEntry(const std::string& name) const;

  DatabaseOptions options_;
  IntegrityCounters recovery_;
  /// Sequence number of the loaded/last-written checkpoint (0: none).
  /// Persisted as the image's leading "CKPT <seq>" line and mirrored
  /// into the fresh WAL as a kCheckpoint marker record, so recovery
  /// can tell a legitimate post-checkpoint log from a superseded one
  /// whose truncation never reached disk.
  uint64_t checkpoint_seq_ = 0;
  /// Recover() found the WAL to be a resurrected pre-checkpoint log;
  /// Open() truncates and restamps it before accepting writes.
  bool stale_wal_ = false;
  mutable std::mutex catalog_mutex_;
  std::map<std::string, std::unique_ptr<TableEntry>> tables_;
  LockManager locks_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::mutex wal_mutex_;
  std::atomic<TxnId> next_txn_{1};
  /// Guards commit_listener_ against SetCommitListener racing a
  /// committing transaction's notification.
  std::mutex commit_listener_mutex_;
  CommitListener commit_listener_;
};

/// Handle for one ACID transaction. All reads/writes go through here so
/// locks and log records are taken consistently. Not thread-safe — one
/// thread per transaction.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  bool active() const { return state_ == State::kActive; }

  Result<RowId> Insert(const std::string& table, Row row);
  Status Update(const std::string& table, RowId id, Row row);
  Status Delete(const std::string& table, RowId id);
  Result<Row> Get(const std::string& table, RowId id);

  /// Snapshot of all live rows (takes a table-level S lock; phantom-safe
  /// against concurrent inserts which hold IX).
  Result<std::vector<std::pair<RowId, Row>>> Scan(const std::string& table);

  /// Scan filtered by a predicate evaluated under the same S lock.
  Result<std::vector<std::pair<RowId, Row>>> ScanWhere(
      const std::string& table,
      const std::function<bool(const Row&)>& pred);

  /// Index equality lookup (IS table lock + S row locks).
  Result<std::vector<std::pair<RowId, Row>>> IndexLookup(
      const std::string& table, const std::string& column,
      const Value& key);

  /// Index range scan: rows with lo <= column <= hi (either bound may be
  /// null to leave that side open). IS table lock + S row locks.
  Result<std::vector<std::pair<RowId, Row>>> IndexRange(
      const std::string& table, const std::string& column,
      const Value* lo, const Value* hi);

  Status Commit();
  Status Abort();

 private:
  friend class Database;
  Transaction(Database* db, TxnId id) : db_(db), id_(id) {}

  enum class State { kActive, kCommitted, kAborted };
  struct UndoEntry {
    LogRecord::Type op;  // kInsert/kUpdate/kDelete
    std::string table;
    RowId row_id;
    Row before;
  };

  Status LockTable(const std::string& table, LockMode mode);
  Status LockRow(const std::string& table, RowId id, LockMode mode);
  Status Log(LogRecord::Type type, const std::string& table, RowId id,
             const Row& before, const Row& after);
  void RollbackInMemory();

  Database* db_;
  TxnId id_;
  State state_ = State::kActive;
  std::vector<UndoEntry> undo_;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_DATABASE_H_
