#include "rdbms/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace structura::rdbms {

/// Internal node: keys[i] separates children[i] (< keys[i]) from
/// children[i+1] (>= keys[i]). Leaf: parallel keys/rows arrays plus a
/// next-leaf pointer.
struct BTreeIndex::Node {
  bool is_leaf = true;
  std::vector<Value> keys;
  // Internal nodes:
  std::vector<std::unique_ptr<Node>> children;
  // Leaves:
  std::vector<RowId> rows;
  Node* next_leaf = nullptr;
};

struct BTreeIndex::SplitResult {
  bool split = false;
  Value separator;
  std::unique_ptr<Node> right;
};

BTreeIndex::BTreeIndex() : root_(std::make_unique<Node>()) {}
BTreeIndex::~BTreeIndex() = default;

BTreeIndex::SplitResult BTreeIndex::InsertRec(Node* node, const Value& key,
                                              RowId row) {
  if (node->is_leaf) {
    // Insert after the last equal key so duplicates keep arrival order.
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->rows.insert(node->rows.begin() + static_cast<long>(pos), row);
    if (node->keys.size() <= kFanout) return {};
    // Split leaf.
    auto right = std::make_unique<Node>();
    right->is_leaf = true;
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                       node->keys.end());
    right->rows.assign(node->rows.begin() + static_cast<long>(mid),
                       node->rows.end());
    node->keys.resize(mid);
    node->rows.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    SplitResult res;
    res.split = true;
    res.separator = right->keys.front();
    res.right = std::move(right);
    return res;
  }
  // Internal: find child such that key < keys[i] goes to children[i].
  size_t child = static_cast<size_t>(
      std::upper_bound(node->keys.begin(), node->keys.end(), key) -
      node->keys.begin());
  SplitResult child_split =
      InsertRec(node->children[child].get(), key, row);
  if (!child_split.split) return {};
  node->keys.insert(node->keys.begin() + static_cast<long>(child),
                    child_split.separator);
  node->children.insert(
      node->children.begin() + static_cast<long>(child) + 1,
      std::move(child_split.right));
  if (node->keys.size() <= kFanout) return {};
  // Split internal node: middle key moves up.
  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  SplitResult res;
  res.split = true;
  res.separator = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                     node->keys.end());
  right->children.reserve(node->keys.size() - mid);
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->children.resize(mid + 1);
  node->keys.resize(mid);
  res.right = std::move(right);
  return res;
}

void BTreeIndex::Insert(const Value& key, RowId row) {
  SplitResult res = InsertRec(root_.get(), key, row);
  if (res.split) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(std::move(res.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(res.right));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::vector<RowId> BTreeIndex::Lookup(const Value& key) const {
  return Range(&key, &key);
}

std::vector<RowId> BTreeIndex::Range(const Value* lo,
                                     const Value* hi) const {
  std::vector<RowId> out;
  const Node* leaf;
  if (lo != nullptr) {
    // Descend toward the lower bound.
    const Node* node = root_.get();
    while (!node->is_leaf) {
      size_t child = static_cast<size_t>(
          std::lower_bound(node->keys.begin(), node->keys.end(), *lo) -
          node->keys.begin());
      node = node->children[child].get();
    }
    leaf = node;
  } else {
    const Node* node = root_.get();
    while (!node->is_leaf) node = node->children.front().get();
    leaf = node;
  }
  for (; leaf != nullptr; leaf = leaf->next_leaf) {
    size_t start = 0;
    if (lo != nullptr) {
      start = static_cast<size_t>(
          std::lower_bound(leaf->keys.begin(), leaf->keys.end(), *lo) -
          leaf->keys.begin());
    }
    for (size_t i = start; i < leaf->keys.size(); ++i) {
      if (hi != nullptr && *hi < leaf->keys[i]) return out;
      out.push_back(leaf->rows[i]);
    }
  }
  return out;
}

bool BTreeIndex::Erase(const Value& key, RowId row) {
  // Walk leaves from the lower bound until the key range is exhausted.
  Node* node = root_.get();
  while (!node->is_leaf) {
    size_t child = static_cast<size_t>(
        std::lower_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[child].get();
  }
  for (Node* leaf = node; leaf != nullptr; leaf = leaf->next_leaf) {
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    size_t i = static_cast<size_t>(it - leaf->keys.begin());
    for (; i < leaf->keys.size() && !(key < leaf->keys[i]); ++i) {
      if (leaf->rows[i] == row) {
        leaf->keys.erase(leaf->keys.begin() + static_cast<long>(i));
        leaf->rows.erase(leaf->rows.begin() + static_cast<long>(i));
        --size_;
        return true;
      }
    }
    if (i < leaf->keys.size()) return false;  // moved past the key range
  }
  return false;
}

size_t BTreeIndex::height() const {
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

bool BTreeIndex::CheckNode(const Node* node, const Value* lo,
                           const Value* hi) const {
  for (size_t i = 1; i < node->keys.size(); ++i) {
    if (node->keys[i] < node->keys[i - 1]) {
      STRUCTURA_LOG(kError) << "btree: keys out of order";
      return false;
    }
  }
  if (lo != nullptr && !node->keys.empty() && node->keys.front() < *lo) {
    STRUCTURA_LOG(kError) << "btree: key below subtree lower bound";
    return false;
  }
  if (hi != nullptr && !node->keys.empty() && *hi < node->keys.back()) {
    STRUCTURA_LOG(kError) << "btree: key above subtree upper bound";
    return false;
  }
  if (node->is_leaf) {
    return node->keys.size() == node->rows.size();
  }
  if (node->children.size() != node->keys.size() + 1) {
    STRUCTURA_LOG(kError) << "btree: child count mismatch";
    return false;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
    const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
    if (!CheckNode(node->children[i].get(), child_lo, child_hi)) {
      return false;
    }
  }
  return true;
}

bool BTreeIndex::CheckInvariants() const {
  return CheckNode(root_.get(), nullptr, nullptr);
}

}  // namespace structura::rdbms
