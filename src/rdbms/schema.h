#ifndef STRUCTURA_RDBMS_SCHEMA_H_
#define STRUCTURA_RDBMS_SCHEMA_H_

#include <string>
#include <vector>

#include "common/strings.h"
#include "rdbms/value.h"

namespace structura::rdbms {

/// One column of a relational schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// A table schema: ordered named columns.
struct TableSchema {
  std::string table_name;
  std::vector<Column> columns;

  /// Index of `name`, or -1.
  int ColumnIndex(const std::string& name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  size_t arity() const { return columns.size(); }
};

/// A row; invariant: row.size() == schema.arity() (nulls for absent).
using Row = std::vector<Value>;

/// Stable identifier of a row slot within a table.
using RowId = uint64_t;

/// Serializes a row for WAL/checkpoint use.
inline void AppendRowTo(const Row& row, std::string* out) {
  out->append(std::to_string(row.size()));
  out->push_back('|');
  for (const Value& v : row) v.AppendTo(out);
}

inline Result<Row> ParseRowFrom(const std::string& data, size_t* pos) {
  size_t bar = data.find('|', *pos);
  if (bar == std::string::npos) {
    return Status::Corruption("bad row arity");
  }
  int64_t arity = 0;
  if (!ParseInt64(data.substr(*pos, bar - *pos), &arity) || arity < 0 ||
      arity > 4096) {
    return Status::Corruption("bad row arity");
  }
  *pos = bar + 1;
  Row row;
  row.reserve(static_cast<size_t>(arity));
  for (int64_t i = 0; i < arity; ++i) {
    STRUCTURA_ASSIGN_OR_RETURN(Value v, Value::ParseFrom(data, pos));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_SCHEMA_H_
