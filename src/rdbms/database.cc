#include "rdbms/database.h"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

#include "common/crc32c.h"
#include "common/env.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"

namespace structura::rdbms {
namespace {

/// Schemas are serialized one field per line; names must not contain
/// newlines (enforced at CreateTable).
std::string SerializeSchema(const TableSchema& schema) {
  std::string out = schema.table_name + "\n";
  for (const Column& c : schema.columns) {
    out += c.name;
    out += ' ';
    out += ValueTypeName(c.type);
    out += '\n';
  }
  return out;
}

Result<TableSchema> DeserializeSchema(const std::string& data) {
  TableSchema schema;
  std::vector<std::string> lines = Split(data, '\n');
  if (lines.empty() || lines[0].empty()) {
    return Status::Corruption("bad schema: missing table name");
  }
  schema.table_name = lines[0];
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    size_t space = lines[i].rfind(' ');
    if (space == std::string::npos) {
      return Status::Corruption("bad schema column line");
    }
    Column col;
    col.name = lines[i].substr(0, space);
    std::string type = lines[i].substr(space + 1);
    if (type == "int") {
      col.type = ValueType::kInt;
    } else if (type == "double") {
      col.type = ValueType::kDouble;
    } else if (type == "string") {
      col.type = ValueType::kString;
    } else if (type == "null") {
      col.type = ValueType::kNull;
    } else {
      return Status::Corruption("bad schema column type: " + type);
    }
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

/// Reads a checkpoint file and verifies its footer
/// ("FOOTER <crc32c> <body_len>\n" as the last line, CRC over the body)
/// before handing back the body. Any mismatch — missing footer, bad
/// length, checksum failure — is kCorruption, so recovery can fall back
/// to WAL-only replay instead of loading garbage.
Result<std::string> ReadVerifiedCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open checkpoint");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (data.empty() || data.back() != '\n') {
    return Status::Corruption("checkpoint missing footer");
  }
  size_t prev_nl = data.rfind('\n', data.size() - 2);
  size_t footer_start = prev_nl == std::string::npos ? 0 : prev_nl + 1;
  if (data.compare(footer_start, 7, "FOOTER ") != 0) {
    return Status::Corruption("checkpoint missing footer");
  }
  std::vector<std::string> parts = Split(
      data.substr(footer_start + 7, data.size() - footer_start - 8), ' ');
  int64_t crc = 0;
  int64_t body_len = 0;
  if (parts.size() != 2 || !ParseInt64(parts[0], &crc) ||
      !ParseInt64(parts[1], &body_len) || crc < 0 || body_len < 0) {
    return Status::Corruption("bad checkpoint footer");
  }
  if (static_cast<size_t>(body_len) != footer_start) {
    return Status::Corruption("checkpoint footer length mismatch");
  }
  std::string body = data.substr(0, footer_start);
  if (Crc32c(body) != static_cast<uint32_t>(crc)) {
    return Status::Corruption("checkpoint checksum mismatch");
  }
  return body;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  if (!db->options_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(db->options_.dir, ec);
    if (ec) {
      return Status::Internal("cannot create db dir: " + ec.message());
    }
    STRUCTURA_RETURN_IF_ERROR(db->Recover());
    STRUCTURA_ASSIGN_OR_RETURN(
        db->wal_, WriteAheadLog::Open(db->WalPath(), db->options_.wal));
    if (db->stale_wal_) {
      // The on-disk log predates the loaded checkpoint — its
      // truncation never became durable before a crash. Truncate it
      // now and restamp the epoch marker so new appends never land
      // after superseded content.
      std::lock_guard<std::mutex> wal_lock(db->wal_mutex_);
      STRUCTURA_RETURN_IF_ERROR(db->wal_->Reset());
      STRUCTURA_RETURN_IF_ERROR(db->StampWalMarkerLocked());
      db->stale_wal_ = false;
    }
  }
  return db;
}

Status Database::Recover() {
  recovery_ = IntegrityCounters{};
  bool salvage = false;
  if (std::filesystem::exists(CheckpointPath())) {
    Status loaded = LoadCheckpoint(CheckpointPath());
    if (loaded.code() == StatusCode::kCorruption) {
      // A corrupt checkpoint must never be served; drop whatever it
      // half-loaded and fall back to WAL-only replay. Data covered only
      // by the (now-truncated) pre-checkpoint WAL is reported lost
      // rather than silently replaced with garbage.
      STRUCTURA_LOG(kWarning)
          << "checkpoint rejected (" << loaded.message()
          << "); falling back to WAL-only replay";
      tables_.clear();
      checkpoint_seq_ = 0;
      ++recovery_.checkpoints_rejected;
      ++recovery_.corrupt_records;
      salvage = true;
    } else if (!loaded.ok()) {
      return loaded;
    }
  }
  STRUCTURA_ASSIGN_OR_RETURN(WalReadResult log,
                             WriteAheadLog::ReadAll(WalPath()));
  recovery_.records_verified += log.records.size();
  recovery_.corrupt_records +=
      log.frames.damaged_regions + log.undecodable_frames;
  recovery_.salvaged_records += log.frames.frames_salvaged;
  if (!log.gaps.empty()) {
    salvage = true;
    for (const auto& [begin, end] : log.frames.lost_ranges) {
      STRUCTURA_LOG(kWarning)
          << "wal corruption: lost byte range [" << begin << ", " << end
          << ") of " << WalPath() << "; salvaged later records";
    }
  }
  if (log.frames.torn_tail) {
    // A torn tail is the expected artifact of a crash mid-append: not
    // reported as corruption, but truncated away so future appends
    // start at the last valid frame — and, unlike the pre-salvage
    // reader, reported to the caller instead of silently dropped.
    recovery_.torn_tail_bytes += log.frames.torn_tail_bytes;
    STRUCTURA_LOG(kWarning)
        << "wal torn tail: truncating " << log.frames.torn_tail_bytes
        << " bytes at offset " << log.frames.torn_tail_offset << " of "
        << WalPath();
    std::error_code ec;
    std::filesystem::resize_file(WalPath(), log.frames.torn_tail_offset,
                                 ec);
    if (ec) {
      return Status::Internal("cannot truncate torn wal tail: " +
                              ec.message());
    }
  }
  // Stale-WAL detection. Each checkpoint stamps the freshly truncated
  // log with a kCheckpoint epoch marker carrying the checkpoint's
  // sequence number. If the checkpoint loaded but the log's first
  // record is not a marker of at least that sequence, the truncation
  // never became durable and this is the *superseded* pre-checkpoint
  // log resurrected by a crash: replaying it over the checkpoint would
  // double-apply (or outright fail on deletes of rows the checkpoint
  // no longer has), so it is dropped wholesale. If damage destroyed
  // the region where the marker would sit, staleness is unprovable and
  // the log is replayed in salvage mode instead.
  if (checkpoint_seq_ > 0 && !log.records.empty()) {
    bool fresh = false;
    const LogRecord& first = log.records.front();
    if (first.type == LogRecord::Type::kCheckpoint) {
      int64_t marker_seq = 0;
      if (ParseInt64(first.payload, &marker_seq) && marker_seq >= 0 &&
          static_cast<uint64_t>(marker_seq) >= checkpoint_seq_) {
        fresh = true;
      }
    }
    bool leading_damage = false;
    for (size_t gap : log.gaps) {
      if (gap == 0) leading_damage = true;
    }
    if (!fresh && leading_damage) {
      salvage = true;
    } else if (!fresh) {
      STRUCTURA_LOG(kWarning)
          << "wal predates checkpoint epoch "
          << static_cast<unsigned long long>(checkpoint_seq_)
          << " (resurrected pre-checkpoint log); dropping "
          << log.records.size() << " stale records";
      recovery_.stale_wal_records += log.records.size();
      log.records.clear();
      log.gaps.clear();
      stale_wal_ = true;
    }
  }
  STRUCTURA_RETURN_IF_ERROR(ApplyCommitted(log, salvage));
  // Continue txn ids past anything in the log.
  for (const LogRecord& r : log.records) {
    if (r.txn >= next_txn_.load()) next_txn_.store(r.txn + 1);
  }
  return Status::OK();
}

Status Database::ApplyCommitted(const WalReadResult& log, bool salvage) {
  // Every frame of a transaction lies between its kBegin and its
  // kCommit, so a committed transaction can only have lost frames if a
  // damaged region (gap) falls inside that span — or if its kBegin
  // itself is gone. Such "tainted" transactions are dropped atomically:
  // none of their surviving records are redone, so a partially-damaged
  // transaction never half-applies.
  std::unordered_set<TxnId> committed;
  std::unordered_set<TxnId> has_begin;
  std::unordered_set<TxnId> has_finish;  // commit or abort seen
  std::unordered_map<TxnId, size_t> first_idx;
  std::unordered_map<TxnId, size_t> commit_idx;
  const std::vector<LogRecord>& records = log.records;
  for (size_t i = 0; i < records.size(); ++i) {
    const LogRecord& r = records[i];
    if (r.txn == 0) continue;  // auto-committed DDL
    first_idx.emplace(r.txn, i);
    if (r.type == LogRecord::Type::kBegin) has_begin.insert(r.txn);
    if (r.type == LogRecord::Type::kAbort) has_finish.insert(r.txn);
    if (r.type == LogRecord::Type::kCommit) {
      committed.insert(r.txn);
      has_finish.insert(r.txn);
      commit_idx[r.txn] = i;
    }
  }
  std::unordered_set<TxnId> tainted;
  if (!log.gaps.empty()) {
    for (TxnId txn : committed) {
      size_t first = first_idx[txn];
      size_t commit = commit_idx[txn];
      bool gap_inside = false;
      for (size_t gap : log.gaps) {
        if (gap > first && gap <= commit) {
          gap_inside = true;
          break;
        }
      }
      if (gap_inside || has_begin.count(txn) == 0) {
        tainted.insert(txn);
        ++recovery_.lost_txns;
        STRUCTURA_LOG(kWarning)
            << "dropping transaction " << txn
            << " whose frames span a damaged wal region";
      }
    }
    // A transaction with records but no commit/abort after a mid-file
    // gap may have lost its commit record to damage: it is dropped like
    // any in-flight transaction, but counted as potentially lost.
    for (const auto& [txn, first] : first_idx) {
      if (has_finish.count(txn) > 0) continue;
      for (size_t gap : log.gaps) {
        if (gap > first) {
          ++recovery_.lost_txns;
          break;
        }
      }
    }
  }
  auto replay = [&](TxnId txn) {
    return committed.count(txn) > 0 && tainted.count(txn) == 0;
  };
  for (const LogRecord& r : records) {
    switch (r.type) {
      case LogRecord::Type::kCreateTable: {
        STRUCTURA_ASSIGN_OR_RETURN(TableSchema schema,
                                   DeserializeSchema(r.payload));
        auto entry = std::make_unique<TableEntry>();
        entry->table = std::make_unique<Table>(schema);
        tables_[schema.table_name] = std::move(entry);
        break;
      }
      case LogRecord::Type::kCreateIndex: {
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          if (salvage) break;  // table DDL lost to damage: skip
          return Status::Corruption("index on unknown table " + r.table);
        }
        // Idempotent: a checkpoint may already contain the index.
        if (!entry->table->HasIndex(r.payload)) {
          STRUCTURA_RETURN_IF_ERROR(entry->table->CreateIndex(r.payload));
        }
        break;
      }
      case LogRecord::Type::kDropTable:
        tables_.erase(r.table);
        break;
      case LogRecord::Type::kInsert: {
        if (!replay(r.txn)) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          if (salvage) break;
          return Status::Corruption("insert into unknown table " + r.table);
        }
        Status applied = entry->table->InsertAt(r.row_id, r.after);
        if (!applied.ok() && !salvage) return applied;
        break;
      }
      case LogRecord::Type::kUpdate: {
        if (!replay(r.txn)) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          if (salvage) break;
          return Status::Corruption("update of unknown table " + r.table);
        }
        Status applied = entry->table->Update(r.row_id, r.after);
        if (!applied.ok() && !salvage) return applied;
        break;
      }
      case LogRecord::Type::kDelete: {
        if (!replay(r.txn)) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          if (salvage) break;
          return Status::Corruption("delete from unknown table " + r.table);
        }
        Status applied = entry->table->Delete(r.row_id);
        if (!applied.ok() && !salvage) return applied;
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

Status Database::LoadCheckpoint(const std::string& path) {
  // The footer CRC is verified before any of the body is trusted; a
  // flipped byte anywhere in the image surfaces as kCorruption here and
  // recovery falls back to WAL-only replay.
  STRUCTURA_ASSIGN_OR_RETURN(std::string data,
                             ReadVerifiedCheckpoint(path));
  size_t pos = 0;
  Table* current = nullptr;
  auto read_to_newline = [&](std::string* out) -> bool {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) return false;
    *out = data.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  while (pos < data.size()) {
    if (data.compare(pos, 5, "CKPT ") == 0) {
      pos += 5;
      std::string seq_str;
      if (!read_to_newline(&seq_str)) {
        return Status::Corruption("truncated checkpoint CKPT line");
      }
      int64_t seq = 0;
      if (!ParseInt64(seq_str, &seq) || seq < 0) {
        return Status::Corruption("bad checkpoint sequence");
      }
      checkpoint_seq_ = static_cast<uint64_t>(seq);
    } else if (data.compare(pos, 6, "TABLE ") == 0) {
      pos += 6;
      std::string blob;
      if (!read_to_newline(&blob)) {
        return Status::Corruption("truncated checkpoint TABLE line");
      }
      // Schema newlines were escaped with \x1f at save time.
      for (char& c : blob) {
        if (c == '\x1f') c = '\n';
      }
      STRUCTURA_ASSIGN_OR_RETURN(TableSchema schema,
                                 DeserializeSchema(blob));
      auto entry = std::make_unique<TableEntry>();
      entry->table = std::make_unique<Table>(schema);
      current = entry->table.get();
      tables_[schema.table_name] = std::move(entry);
    } else if (data.compare(pos, 4, "ROW ") == 0) {
      if (current == nullptr) {
        return Status::Corruption("checkpoint row before table");
      }
      pos += 4;
      size_t space = data.find(' ', pos);
      if (space == std::string::npos) {
        return Status::Corruption("bad checkpoint row header");
      }
      int64_t row_id = 0;
      if (!ParseInt64(data.substr(pos, space - pos), &row_id)) {
        return Status::Corruption("bad checkpoint row id");
      }
      pos = space + 1;
      // Length-framed row parse handles values containing newlines.
      STRUCTURA_ASSIGN_OR_RETURN(Row row, ParseRowFrom(data, &pos));
      if (pos >= data.size() || data[pos] != '\n') {
        return Status::Corruption("bad checkpoint row terminator");
      }
      ++pos;
      STRUCTURA_RETURN_IF_ERROR(
          current->InsertAt(static_cast<RowId>(row_id), std::move(row)));
    } else if (data.compare(pos, 6, "INDEX ") == 0) {
      pos += 6;
      std::string rest;
      if (!read_to_newline(&rest)) {
        return Status::Corruption("truncated checkpoint INDEX line");
      }
      std::vector<std::string> parts = Split(rest, ' ');
      if (parts.size() != 2) {
        return Status::Corruption("bad checkpoint index line");
      }
      TableEntry* entry = FindEntry(parts[0]);
      if (entry == nullptr) {
        return Status::Corruption("checkpoint index on unknown table");
      }
      STRUCTURA_RETURN_IF_ERROR(entry->table->CreateIndex(parts[1]));
    } else if (data[pos] == '\n') {
      ++pos;
    } else {
      return Status::Corruption("unknown checkpoint entry");
    }
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (options_.dir.empty()) {
    return Status::FailedPrecondition("ephemeral database");
  }
  // Quiesce writers so the image is transactionally consistent: a
  // shared table lock on every table (under a private txn id) conflicts
  // with any writer's IX, and strict 2PL keeps that IX until the writer
  // commits or aborts — so the image can never capture another
  // transaction's uncommitted rows. The watchdog's auto-heal calls
  // this concurrently with live traffic, which is why the quiesce
  // lives here rather than in the callers. Locks are acquired without
  // holding catalog_mutex_ (writers need it mid-statement; waiting on
  // them while holding it would deadlock) and looped until the table
  // set is stable, so a table created while we locked is covered too.
  TxnId cp_txn = next_txn_.fetch_add(1);
  uint64_t begin_seq = 0;
  {
    std::lock_guard<std::mutex> catalog(catalog_mutex_);
    begin_seq = checkpoint_seq_ + 1;
  }
  obs::RecordEvent(obs::EventCategory::kCheckpoint,
                   obs::EventCode::kCheckpointBegin, begin_seq, 0, 0, "db");
  std::unordered_set<std::string> locked;
  Status result;
  for (;;) {
    std::vector<std::string> names;
    {
      std::lock_guard<std::mutex> catalog(catalog_mutex_);
      for (const auto& [name, entry] : tables_) names.push_back(name);
    }
    for (const std::string& name : names) {
      if (locked.count(name) > 0) continue;
      if (Status s = locks_.Acquire(cp_txn, "t:" + name, LockMode::kShared);
          !s.ok()) {
        // Deadlock victim: give way to the foreground transaction. The
        // caller (watchdog heal) simply retries after its cooldown.
        locks_.ReleaseAll(cp_txn);
        obs::RecordEvent(obs::EventCategory::kCheckpoint,
                         obs::EventCode::kCheckpointEnd, begin_seq, 1, 0,
                         "db");
        return s;
      }
      locked.insert(name);
    }
    // The image build re-checks the catalog under its own lock and
    // bounces (raced=true) if a table slipped in after the pass above;
    // the next pass locks it too.
    bool raced = false;
    result = CheckpointQuiesced(locked, &raced);
    if (!raced) break;
  }
  locks_.ReleaseAll(cp_txn);
  obs::RecordEvent(obs::EventCategory::kCheckpoint,
                   obs::EventCode::kCheckpointEnd, begin_seq,
                   result.ok() ? 0 : 1, 0, "db");
  return result;
}

Status Database::CheckpointQuiesced(
    const std::unordered_set<std::string>& locked, bool* raced) {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  for (const auto& [name, entry] : tables_) {
    if (locked.count(name) == 0) {
      // Created after the quiesce pass: without its table lock the
      // image could capture an in-flight writer's uncommitted rows.
      *raced = true;
      return Status::OK();
    }
  }
  std::string image;
  // Epoch header: ties this image to the kCheckpoint marker stamped
  // into the truncated WAL below, so recovery can tell a legitimate
  // post-checkpoint log from a resurrected pre-checkpoint one.
  const uint64_t seq = checkpoint_seq_ + 1;
  image += StrFormat("CKPT %llu\n", static_cast<unsigned long long>(seq));
  for (const auto& [name, entry] : tables_) {
    std::lock_guard<std::mutex> latch(entry->latch);
    std::string schema_blob = SerializeSchema(entry->table->schema());
    for (char& c : schema_blob) {
      if (c == '\n') c = '\x1f';
    }
    image += "TABLE " + schema_blob + '\n';
    // Persisted index list, before rows so load can rebuild on insert.
    const TableSchema& schema = entry->table->schema();
    for (const Column& col : schema.columns) {
      if (entry->table->HasIndex(col.name)) {
        image += "INDEX " + name + ' ' + col.name + '\n';
      }
    }
    entry->table->Scan([&](RowId id, const Row& row) {
      std::string line =
          StrFormat("ROW %llu ", static_cast<unsigned long long>(id));
      AppendRowTo(row, &line);
      image += line;
      image += '\n';
    });
  }
  image += StrFormat("FOOTER %llu %zu\n",
                     static_cast<unsigned long long>(Crc32c(image)),
                     image.size());
  // Deterministic bit-rot injection over the full image (body or
  // footer); LoadCheckpoint must reject the file either way.
  STRUCTURA_RETURN_IF_ERROR(MaybeCorrupt("checkpoint.write", &image));
  // Atomic replacement: fsync the tmp file, rename it over the live
  // checkpoint, fsync the parent directory. The "db.checkpoint.write"
  // failpoint fires after the tmp write but before the durability
  // steps: a crash there must leave the old checkpoint and the
  // un-truncated WAL fully authoritative.
  STRUCTURA_RETURN_IF_ERROR(AtomicReplaceFile(
      env(), CheckpointPath(), image, "db.checkpoint.write"));
  checkpoint_seq_ = seq;
  // Only now — with the new checkpoint durably in place — is the WAL
  // redundant and safe to truncate.
  std::lock_guard<std::mutex> wal_lock(wal_mutex_);
  STRUCTURA_RETURN_IF_ERROR(wal_->Reset());
  return StampWalMarkerLocked();
}

Status Database::StampWalMarkerLocked() {
  LogRecord marker;
  marker.type = LogRecord::Type::kCheckpoint;
  marker.payload =
      StrFormat("%llu", static_cast<unsigned long long>(checkpoint_seq_));
  // Deliberately not synced: if the marker never reaches disk, neither
  // did any later record (file writes are ordered), so the log reads
  // back empty and the checkpoint is authoritative anyway.
  return wal_->AppendRecord(marker).status();
}

Status Database::Scrub(IntegrityCounters* counters) {
  if (options_.dir.empty()) return Status::OK();  // ephemeral: no disk
  if (std::filesystem::exists(CheckpointPath())) {
    Result<std::string> body = ReadVerifiedCheckpoint(CheckpointPath());
    if (body.ok()) {
      ++counters->records_verified;
    } else if (body.status().code() == StatusCode::kCorruption) {
      ++counters->corrupt_records;
      ++counters->checkpoints_rejected;
    } else {
      return body.status();
    }
  }
  // Hold the WAL lock so the scrub sees a consistent, flushed file.
  std::lock_guard<std::mutex> wal_lock(wal_mutex_);
  if (wal_ != nullptr) STRUCTURA_RETURN_IF_ERROR(wal_->Flush());
  return WriteAheadLog::Scrub(WalPath(), counters);
}

Database::TableEntry* Database::FindEntry(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

void Database::NotifyCommit(const std::vector<std::string>& tables) {
  if (tables.empty()) return;
  CommitListener listener;
  {
    std::lock_guard<std::mutex> lock(commit_listener_mutex_);
    listener = commit_listener_;
  }
  if (listener) listener(tables);
}

Result<Table*> Database::CreateTable(const TableSchema& schema) {
  if (schema.table_name.empty() ||
      schema.table_name.find('\n') != std::string::npos ||
      schema.table_name.find(' ') != std::string::npos) {
    return Status::InvalidArgument("bad table name");
  }
  for (const Column& c : schema.columns) {
    if (c.name.empty() || c.name.find('\n') != std::string::npos ||
        c.name.find(' ') != std::string::npos) {
      return Status::InvalidArgument("bad column name: " + c.name);
    }
  }
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  if (tables_.count(schema.table_name) > 0) {
    return Status::AlreadyExists("table " + schema.table_name);
  }
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCreateTable;
    rec.payload = SerializeSchema(schema);
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_ASSIGN_OR_RETURN(uint64_t ticket, wal_->AppendRecord(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->WaitDurable(ticket));
  }
  auto entry = std::make_unique<TableEntry>();
  entry->table = std::make_unique<Table>(schema);
  Table* ptr = entry->table.get();
  tables_[schema.table_name] = std::move(entry);
  NotifyCommit({schema.table_name});
  return ptr;
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  TableEntry* entry;
  {
    std::lock_guard<std::mutex> catalog(catalog_mutex_);
    entry = FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCreateIndex;
    rec.table = table;
    rec.payload = column;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_ASSIGN_OR_RETURN(uint64_t ticket, wal_->AppendRecord(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->WaitDurable(ticket));
  }
  Status created = [&] {
    std::lock_guard<std::mutex> latch(entry->latch);
    return entry->table->CreateIndex(column);
  }();
  if (created.ok()) NotifyCommit({table});
  return created;
}

Status Database::DropTable(const std::string& table) {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kDropTable;
    rec.table = table;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_ASSIGN_OR_RETURN(uint64_t ticket, wal_->AppendRecord(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->WaitDurable(ticket));
  }
  tables_.erase(it);
  NotifyCommit({table});
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  TableEntry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : entry->table.get();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::unique_ptr<Transaction> Database::Begin() {
  TxnId id = next_txn_.fetch_add(1);
  std::unique_ptr<Transaction> txn(new Transaction(this, id));
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kBegin;
    rec.txn = id;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    Status logged = wal_->Append(rec);
    if (!logged.ok()) {
      // The transaction can still run; its Commit will observe the same
      // (sticky) failure and refuse the acknowledgement.
      STRUCTURA_LOG(kWarning)
          << "wal begin-record append failed for txn " << id << ": "
          << logged.ToString();
    }
  }
  return txn;
}

// ---------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------

Transaction::~Transaction() {
  if (state_ == State::kActive) Abort();
}

Status Transaction::LockTable(const std::string& table, LockMode mode) {
  return db_->locks_.Acquire(id_, "t:" + table, mode);
}

Status Transaction::LockRow(const std::string& table, RowId id,
                            LockMode mode) {
  return db_->locks_.Acquire(
      id_,
      StrFormat("r:%s:%llu", table.c_str(),
                static_cast<unsigned long long>(id)),
      mode);
}

Status Transaction::Log(LogRecord::Type type, const std::string& table,
                        RowId id, const Row& before, const Row& after) {
  if (!db_->wal_) return Status::OK();
  LogRecord rec;
  rec.type = type;
  rec.txn = id_;
  rec.table = table;
  rec.row_id = id;
  rec.before = before;
  rec.after = after;
  std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
  return db_->wal_->Append(rec);
}

Result<RowId> Transaction::Insert(const std::string& table, Row row) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  RowId id;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(id, entry->table->Insert(std::move(row)));
  }
  // The row id exists only after the physical insert; lock it now. No
  // other transaction can have seen it (scans conflict with our IX).
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row after;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(after, entry->table->Get(id));
  }
  if (Status logged = Log(LogRecord::Type::kInsert, table, id, {}, after);
      !logged.ok()) {
    // The WAL refused the record: the statement fails, so the physical
    // insert above must leave no trace — otherwise a later heal
    // checkpoint would durably persist a write the client was told
    // failed.
    std::lock_guard<std::mutex> latch(entry->latch);
    entry->table->Delete(id);
    return logged;
  }
  undo_.push_back(UndoEntry{LogRecord::Type::kInsert, table, id, {}});
  return id;
}

Status Transaction::Update(const std::string& table, RowId id, Row row) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row before;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(before, entry->table->Get(id));
    STRUCTURA_RETURN_IF_ERROR(entry->table->Update(id, row));
  }
  if (Status logged = Log(LogRecord::Type::kUpdate, table, id, before, row);
      !logged.ok()) {
    // Refused write leaves no trace: restore the before-image.
    std::lock_guard<std::mutex> latch(entry->latch);
    entry->table->Update(id, before);
    return logged;
  }
  undo_.push_back(
      UndoEntry{LogRecord::Type::kUpdate, table, id, std::move(before)});
  return Status::OK();
}

Status Transaction::Delete(const std::string& table, RowId id) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row before;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(before, entry->table->Get(id));
    STRUCTURA_RETURN_IF_ERROR(entry->table->Delete(id));
  }
  if (Status logged = Log(LogRecord::Type::kDelete, table, id, before, {});
      !logged.ok()) {
    // Refused write leaves no trace: reinstate the deleted row.
    std::lock_guard<std::mutex> latch(entry->latch);
    entry->table->InsertAt(id, before);
    return logged;
  }
  undo_.push_back(
      UndoEntry{LogRecord::Type::kDelete, table, id, std::move(before)});
  return Status::OK();
}

Result<Row> Transaction::Get(const std::string& table, RowId id) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kIntentionShared));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kShared));
  std::lock_guard<std::mutex> latch(entry->latch);
  return entry->table->Get(id);
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::Scan(
    const std::string& table) {
  return ScanWhere(table, [](const Row&) { return true; });
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::ScanWhere(
    const std::string& table,
    const std::function<bool(const Row&)>& pred) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kShared));
  std::vector<std::pair<RowId, Row>> out;
  std::lock_guard<std::mutex> latch(entry->latch);
  entry->table->Scan([&](RowId id, const Row& row) {
    if (pred(row)) out.emplace_back(id, row);
  });
  return out;
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::IndexLookup(
    const std::string& table, const std::string& column,
    const Value& key) {
  return IndexRange(table, column, &key, &key);
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::IndexRange(
    const std::string& table, const std::string& column, const Value* lo,
    const Value* hi) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kIntentionShared));
  std::vector<RowId> ids;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(ids,
                               entry->table->IndexRange(column, lo, hi));
  }
  std::vector<std::pair<RowId, Row>> out;
  for (RowId id : ids) {
    STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kShared));
    std::lock_guard<std::mutex> latch(entry->latch);
    Result<Row> row = entry->table->Get(id);
    if (row.ok()) out.emplace_back(id, std::move(*row));
  }
  return out;
}

Status Transaction::Commit() {
  if (!active()) return Status::FailedPrecondition("txn not active");
  if (db_->wal_) {
    // Two-phase commit against the log: append the commit record under
    // the wal mutex (serializing log order), then wait for durability
    // OUTSIDE it — so concurrent commits coalesce into one fsync under
    // the group-commit policy instead of serializing their syncs.
    LogRecord rec;
    rec.type = LogRecord::Type::kCommit;
    rec.txn = id_;
    Result<uint64_t> ticket = [&]() -> Result<uint64_t> {
      std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
      return db_->wal_->AppendRecord(rec);
    }();
    Status durable =
        ticket.ok() ? db_->wal_->WaitDurable(*ticket) : ticket.status();
    if (!durable.ok()) {
      // The commit was never acknowledged: undo our in-memory effects
      // while we still hold the exclusive locks, then release them. No
      // abort record is appended — the log is likely the thing that
      // failed, and recovery treats a commit-less transaction as never
      // having happened.
      RollbackInMemory();
      state_ = State::kAborted;
      db_->locks_.ReleaseAll(id_);
      return durable;
    }
  }
  state_ = State::kCommitted;
  db_->locks_.ReleaseAll(id_);
  if (!undo_.empty()) {
    // Distinct tables this transaction wrote, in first-touch order.
    // Notified only here — the durable-success point: aborts and
    // refused commits above never reach this line.
    std::vector<std::string> touched;
    for (const UndoEntry& u : undo_) {
      bool seen = false;
      for (const std::string& t : touched) seen = seen || t == u.table;
      if (!seen) touched.push_back(u.table);
    }
    db_->NotifyCommit(touched);
  }
  return Status::OK();
}

void Transaction::RollbackInMemory() {
  // Undo newest-first using before-images.
  for (size_t i = undo_.size(); i-- > 0;) {
    const UndoEntry& u = undo_[i];
    Database::TableEntry* entry = nullptr;
    {
      std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
      entry = db_->FindEntry(u.table);
    }
    if (entry == nullptr) continue;
    std::lock_guard<std::mutex> latch(entry->latch);
    switch (u.op) {
      case LogRecord::Type::kInsert:
        entry->table->Delete(u.row_id);
        break;
      case LogRecord::Type::kUpdate:
        entry->table->Update(u.row_id, u.before);
        break;
      case LogRecord::Type::kDelete:
        entry->table->InsertAt(u.row_id, u.before);
        break;
      default:
        break;
    }
  }
  undo_.clear();
}

Status Transaction::Abort() {
  if (!active()) return Status::FailedPrecondition("txn not active");
  RollbackInMemory();
  if (db_->wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kAbort;
    rec.txn = id_;
    std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
    db_->wal_->Append(rec);
  }
  state_ = State::kAborted;
  db_->locks_.ReleaseAll(id_);
  return Status::OK();
}

}  // namespace structura::rdbms
