#include "rdbms/database.h"

#include <filesystem>
#include <fstream>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/strings.h"

namespace structura::rdbms {
namespace {

/// Schemas are serialized one field per line; names must not contain
/// newlines (enforced at CreateTable).
std::string SerializeSchema(const TableSchema& schema) {
  std::string out = schema.table_name + "\n";
  for (const Column& c : schema.columns) {
    out += c.name;
    out += ' ';
    out += ValueTypeName(c.type);
    out += '\n';
  }
  return out;
}

Result<TableSchema> DeserializeSchema(const std::string& data) {
  TableSchema schema;
  std::vector<std::string> lines = Split(data, '\n');
  if (lines.empty() || lines[0].empty()) {
    return Status::Corruption("bad schema: missing table name");
  }
  schema.table_name = lines[0];
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    size_t space = lines[i].rfind(' ');
    if (space == std::string::npos) {
      return Status::Corruption("bad schema column line");
    }
    Column col;
    col.name = lines[i].substr(0, space);
    std::string type = lines[i].substr(space + 1);
    if (type == "int") {
      col.type = ValueType::kInt;
    } else if (type == "double") {
      col.type = ValueType::kDouble;
    } else if (type == "string") {
      col.type = ValueType::kString;
    } else if (type == "null") {
      col.type = ValueType::kNull;
    } else {
      return Status::Corruption("bad schema column type: " + type);
    }
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  if (!db->options_.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(db->options_.dir, ec);
    if (ec) {
      return Status::Internal("cannot create db dir: " + ec.message());
    }
    STRUCTURA_RETURN_IF_ERROR(db->Recover());
    STRUCTURA_ASSIGN_OR_RETURN(db->wal_, WriteAheadLog::Open(db->WalPath()));
  }
  return db;
}

Status Database::Recover() {
  if (std::filesystem::exists(CheckpointPath())) {
    STRUCTURA_RETURN_IF_ERROR(LoadCheckpoint(CheckpointPath()));
  }
  STRUCTURA_ASSIGN_OR_RETURN(std::vector<LogRecord> log,
                             WriteAheadLog::ReadAll(WalPath()));
  STRUCTURA_RETURN_IF_ERROR(ApplyCommitted(log));
  // Continue txn ids past anything in the log.
  for (const LogRecord& r : log) {
    if (r.txn >= next_txn_.load()) next_txn_.store(r.txn + 1);
  }
  return Status::OK();
}

Status Database::ApplyCommitted(const std::vector<LogRecord>& log) {
  std::unordered_set<TxnId> committed;
  for (const LogRecord& r : log) {
    if (r.type == LogRecord::Type::kCommit) committed.insert(r.txn);
  }
  for (const LogRecord& r : log) {
    switch (r.type) {
      case LogRecord::Type::kCreateTable: {
        STRUCTURA_ASSIGN_OR_RETURN(TableSchema schema,
                                   DeserializeSchema(r.payload));
        auto entry = std::make_unique<TableEntry>();
        entry->table = std::make_unique<Table>(schema);
        tables_[schema.table_name] = std::move(entry);
        break;
      }
      case LogRecord::Type::kCreateIndex: {
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          return Status::Corruption("index on unknown table " + r.table);
        }
        // Idempotent: a checkpoint may already contain the index.
        if (!entry->table->HasIndex(r.payload)) {
          STRUCTURA_RETURN_IF_ERROR(entry->table->CreateIndex(r.payload));
        }
        break;
      }
      case LogRecord::Type::kDropTable:
        tables_.erase(r.table);
        break;
      case LogRecord::Type::kInsert: {
        if (committed.count(r.txn) == 0) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          return Status::Corruption("insert into unknown table " + r.table);
        }
        STRUCTURA_RETURN_IF_ERROR(
            entry->table->InsertAt(r.row_id, r.after));
        break;
      }
      case LogRecord::Type::kUpdate: {
        if (committed.count(r.txn) == 0) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          return Status::Corruption("update of unknown table " + r.table);
        }
        STRUCTURA_RETURN_IF_ERROR(entry->table->Update(r.row_id, r.after));
        break;
      }
      case LogRecord::Type::kDelete: {
        if (committed.count(r.txn) == 0) break;
        TableEntry* entry = FindEntry(r.table);
        if (entry == nullptr) {
          return Status::Corruption("delete from unknown table " + r.table);
        }
        STRUCTURA_RETURN_IF_ERROR(entry->table->Delete(r.row_id));
        break;
      }
      default:
        break;
    }
  }
  return Status::OK();
}

Status Database::LoadCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::Internal("cannot open checkpoint");
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  size_t pos = 0;
  Table* current = nullptr;
  auto read_to_newline = [&](std::string* out) -> bool {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) return false;
    *out = data.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  while (pos < data.size()) {
    if (data.compare(pos, 6, "TABLE ") == 0) {
      pos += 6;
      std::string blob;
      if (!read_to_newline(&blob)) {
        return Status::Corruption("truncated checkpoint TABLE line");
      }
      // Schema newlines were escaped with \x1f at save time.
      for (char& c : blob) {
        if (c == '\x1f') c = '\n';
      }
      STRUCTURA_ASSIGN_OR_RETURN(TableSchema schema,
                                 DeserializeSchema(blob));
      auto entry = std::make_unique<TableEntry>();
      entry->table = std::make_unique<Table>(schema);
      current = entry->table.get();
      tables_[schema.table_name] = std::move(entry);
    } else if (data.compare(pos, 4, "ROW ") == 0) {
      if (current == nullptr) {
        return Status::Corruption("checkpoint row before table");
      }
      pos += 4;
      size_t space = data.find(' ', pos);
      if (space == std::string::npos) {
        return Status::Corruption("bad checkpoint row header");
      }
      int64_t row_id = 0;
      if (!ParseInt64(data.substr(pos, space - pos), &row_id)) {
        return Status::Corruption("bad checkpoint row id");
      }
      pos = space + 1;
      // Length-framed row parse handles values containing newlines.
      STRUCTURA_ASSIGN_OR_RETURN(Row row, ParseRowFrom(data, &pos));
      if (pos >= data.size() || data[pos] != '\n') {
        return Status::Corruption("bad checkpoint row terminator");
      }
      ++pos;
      STRUCTURA_RETURN_IF_ERROR(
          current->InsertAt(static_cast<RowId>(row_id), std::move(row)));
    } else if (data.compare(pos, 6, "INDEX ") == 0) {
      pos += 6;
      std::string rest;
      if (!read_to_newline(&rest)) {
        return Status::Corruption("truncated checkpoint INDEX line");
      }
      std::vector<std::string> parts = Split(rest, ' ');
      if (parts.size() != 2) {
        return Status::Corruption("bad checkpoint index line");
      }
      TableEntry* entry = FindEntry(parts[0]);
      if (entry == nullptr) {
        return Status::Corruption("checkpoint index on unknown table");
      }
      STRUCTURA_RETURN_IF_ERROR(entry->table->CreateIndex(parts[1]));
    } else if (data[pos] == '\n') {
      ++pos;
    } else {
      return Status::Corruption("unknown checkpoint entry");
    }
  }
  return Status::OK();
}

Status Database::Checkpoint() {
  if (options_.dir.empty()) {
    return Status::FailedPrecondition("ephemeral database");
  }
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  std::string tmp = CheckpointPath() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot write checkpoint");
    for (const auto& [name, entry] : tables_) {
      std::lock_guard<std::mutex> latch(entry->latch);
      std::string schema_blob = SerializeSchema(entry->table->schema());
      for (char& c : schema_blob) {
        if (c == '\n') c = '\x1f';
      }
      out << "TABLE " << schema_blob << '\n';
      // Persisted index list, before rows so load can rebuild on insert.
      const TableSchema& schema = entry->table->schema();
      for (const Column& col : schema.columns) {
        if (entry->table->HasIndex(col.name)) {
          out << "INDEX " << name << ' ' << col.name << '\n';
        }
      }
      entry->table->Scan([&](RowId id, const Row& row) {
        std::string line = StrFormat(
            "ROW %llu ", static_cast<unsigned long long>(id));
        AppendRowTo(row, &line);
        out << line << '\n';
      });
    }
    // Fires after the tmp file is (partially) written but before it
    // replaces the live checkpoint: a crash here must leave the old
    // checkpoint and the un-truncated WAL fully authoritative.
    STRUCTURA_FAILPOINT("db.checkpoint.write");
    out.flush();
    if (!out) return Status::Internal("checkpoint write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, CheckpointPath(), ec);
  if (ec) return Status::Internal("checkpoint rename failed");
  std::lock_guard<std::mutex> wal_lock(wal_mutex_);
  return wal_->Reset();
}

Database::TableEntry* Database::FindEntry(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Result<Table*> Database::CreateTable(const TableSchema& schema) {
  if (schema.table_name.empty() ||
      schema.table_name.find('\n') != std::string::npos ||
      schema.table_name.find(' ') != std::string::npos) {
    return Status::InvalidArgument("bad table name");
  }
  for (const Column& c : schema.columns) {
    if (c.name.empty() || c.name.find('\n') != std::string::npos ||
        c.name.find(' ') != std::string::npos) {
      return Status::InvalidArgument("bad column name: " + c.name);
    }
  }
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  if (tables_.count(schema.table_name) > 0) {
    return Status::AlreadyExists("table " + schema.table_name);
  }
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCreateTable;
    rec.payload = SerializeSchema(schema);
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_RETURN_IF_ERROR(wal_->Append(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->Flush());
  }
  auto entry = std::make_unique<TableEntry>();
  entry->table = std::make_unique<Table>(schema);
  Table* ptr = entry->table.get();
  tables_[schema.table_name] = std::move(entry);
  return ptr;
}

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  TableEntry* entry;
  {
    std::lock_guard<std::mutex> catalog(catalog_mutex_);
    entry = FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCreateIndex;
    rec.table = table;
    rec.payload = column;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_RETURN_IF_ERROR(wal_->Append(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->Flush());
  }
  std::lock_guard<std::mutex> latch(entry->latch);
  return entry->table->CreateIndex(column);
}

Status Database::DropTable(const std::string& table) {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kDropTable;
    rec.table = table;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    STRUCTURA_RETURN_IF_ERROR(wal_->Append(rec));
    STRUCTURA_RETURN_IF_ERROR(wal_->Flush());
  }
  tables_.erase(it);
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  TableEntry* entry = FindEntry(name);
  return entry == nullptr ? nullptr : entry->table.get();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard<std::mutex> catalog(catalog_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

std::unique_ptr<Transaction> Database::Begin() {
  TxnId id = next_txn_.fetch_add(1);
  std::unique_ptr<Transaction> txn(new Transaction(this, id));
  if (wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kBegin;
    rec.txn = id;
    std::lock_guard<std::mutex> wal_lock(wal_mutex_);
    wal_->Append(rec);
  }
  return txn;
}

// ---------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------

Transaction::~Transaction() {
  if (state_ == State::kActive) Abort();
}

Status Transaction::LockTable(const std::string& table, LockMode mode) {
  return db_->locks_.Acquire(id_, "t:" + table, mode);
}

Status Transaction::LockRow(const std::string& table, RowId id,
                            LockMode mode) {
  return db_->locks_.Acquire(
      id_,
      StrFormat("r:%s:%llu", table.c_str(),
                static_cast<unsigned long long>(id)),
      mode);
}

Status Transaction::Log(LogRecord::Type type, const std::string& table,
                        RowId id, const Row& before, const Row& after) {
  if (!db_->wal_) return Status::OK();
  LogRecord rec;
  rec.type = type;
  rec.txn = id_;
  rec.table = table;
  rec.row_id = id;
  rec.before = before;
  rec.after = after;
  std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
  return db_->wal_->Append(rec);
}

Result<RowId> Transaction::Insert(const std::string& table, Row row) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  RowId id;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(id, entry->table->Insert(std::move(row)));
  }
  // The row id exists only after the physical insert; lock it now. No
  // other transaction can have seen it (scans conflict with our IX).
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row after;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(after, entry->table->Get(id));
  }
  STRUCTURA_RETURN_IF_ERROR(
      Log(LogRecord::Type::kInsert, table, id, {}, after));
  undo_.push_back(UndoEntry{LogRecord::Type::kInsert, table, id, {}});
  return id;
}

Status Transaction::Update(const std::string& table, RowId id, Row row) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row before;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(before, entry->table->Get(id));
    STRUCTURA_RETURN_IF_ERROR(entry->table->Update(id, row));
  }
  STRUCTURA_RETURN_IF_ERROR(
      Log(LogRecord::Type::kUpdate, table, id, before, row));
  undo_.push_back(
      UndoEntry{LogRecord::Type::kUpdate, table, id, std::move(before)});
  return Status::OK();
}

Status Transaction::Delete(const std::string& table, RowId id) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(
      LockTable(table, LockMode::kIntentionExclusive));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kExclusive));
  Row before;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(before, entry->table->Get(id));
    STRUCTURA_RETURN_IF_ERROR(entry->table->Delete(id));
  }
  STRUCTURA_RETURN_IF_ERROR(
      Log(LogRecord::Type::kDelete, table, id, before, {}));
  undo_.push_back(
      UndoEntry{LogRecord::Type::kDelete, table, id, std::move(before)});
  return Status::OK();
}

Result<Row> Transaction::Get(const std::string& table, RowId id) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kIntentionShared));
  STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kShared));
  std::lock_guard<std::mutex> latch(entry->latch);
  return entry->table->Get(id);
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::Scan(
    const std::string& table) {
  return ScanWhere(table, [](const Row&) { return true; });
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::ScanWhere(
    const std::string& table,
    const std::function<bool(const Row&)>& pred) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kShared));
  std::vector<std::pair<RowId, Row>> out;
  std::lock_guard<std::mutex> latch(entry->latch);
  entry->table->Scan([&](RowId id, const Row& row) {
    if (pred(row)) out.emplace_back(id, row);
  });
  return out;
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::IndexLookup(
    const std::string& table, const std::string& column,
    const Value& key) {
  return IndexRange(table, column, &key, &key);
}

Result<std::vector<std::pair<RowId, Row>>> Transaction::IndexRange(
    const std::string& table, const std::string& column, const Value* lo,
    const Value* hi) {
  if (!active()) return Status::FailedPrecondition("txn not active");
  Database::TableEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
    entry = db_->FindEntry(table);
  }
  if (entry == nullptr) return Status::NotFound("no table " + table);
  STRUCTURA_RETURN_IF_ERROR(LockTable(table, LockMode::kIntentionShared));
  std::vector<RowId> ids;
  {
    std::lock_guard<std::mutex> latch(entry->latch);
    STRUCTURA_ASSIGN_OR_RETURN(ids,
                               entry->table->IndexRange(column, lo, hi));
  }
  std::vector<std::pair<RowId, Row>> out;
  for (RowId id : ids) {
    STRUCTURA_RETURN_IF_ERROR(LockRow(table, id, LockMode::kShared));
    std::lock_guard<std::mutex> latch(entry->latch);
    Result<Row> row = entry->table->Get(id);
    if (row.ok()) out.emplace_back(id, std::move(*row));
  }
  return out;
}

Status Transaction::Commit() {
  if (!active()) return Status::FailedPrecondition("txn not active");
  if (db_->wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kCommit;
    rec.txn = id_;
    std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
    Status s = db_->wal_->Append(rec);  // Append flushes commits
    if (!s.ok()) return s;
  }
  state_ = State::kCommitted;
  db_->locks_.ReleaseAll(id_);
  return Status::OK();
}

void Transaction::RollbackInMemory() {
  // Undo newest-first using before-images.
  for (size_t i = undo_.size(); i-- > 0;) {
    const UndoEntry& u = undo_[i];
    Database::TableEntry* entry = nullptr;
    {
      std::lock_guard<std::mutex> catalog(db_->catalog_mutex_);
      entry = db_->FindEntry(u.table);
    }
    if (entry == nullptr) continue;
    std::lock_guard<std::mutex> latch(entry->latch);
    switch (u.op) {
      case LogRecord::Type::kInsert:
        entry->table->Delete(u.row_id);
        break;
      case LogRecord::Type::kUpdate:
        entry->table->Update(u.row_id, u.before);
        break;
      case LogRecord::Type::kDelete:
        entry->table->InsertAt(u.row_id, u.before);
        break;
      default:
        break;
    }
  }
  undo_.clear();
}

Status Transaction::Abort() {
  if (!active()) return Status::FailedPrecondition("txn not active");
  RollbackInMemory();
  if (db_->wal_) {
    LogRecord rec;
    rec.type = LogRecord::Type::kAbort;
    rec.txn = id_;
    std::lock_guard<std::mutex> wal_lock(db_->wal_mutex_);
    db_->wal_->Append(rec);
  }
  state_ = State::kAborted;
  db_->locks_.ReleaseAll(id_);
  return Status::OK();
}

}  // namespace structura::rdbms
