#include "rdbms/table.h"

#include "common/strings.h"

namespace structura::rdbms {

Status Table::ValidateRow(const Row& row) const {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(StrFormat(
        "row arity %zu does not match schema arity %zu for table %s",
        row.size(), schema_.arity(), schema_.table_name.c_str()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    ValueType expect = schema_.columns[i].type;
    ValueType got = row[i].type();
    bool numeric_ok =
        (expect == ValueType::kDouble && got == ValueType::kInt);
    if (got != expect && !numeric_ok) {
      return Status::InvalidArgument(StrFormat(
          "column %s expects %s, got %s", schema_.columns[i].name.c_str(),
          ValueTypeName(expect), ValueTypeName(got)));
    }
  }
  return Status::OK();
}

Result<RowId> Table::Insert(Row row) {
  STRUCTURA_RETURN_IF_ERROR(ValidateRow(row));
  RowId id = slots_.size();
  IndexInsert(id, row);
  slots_.push_back(std::move(row));
  ++live_rows_;
  return id;
}

Status Table::InsertAt(RowId id, Row row) {
  STRUCTURA_RETURN_IF_ERROR(ValidateRow(row));
  if (id >= slots_.size()) slots_.resize(id + 1);
  if (slots_[id].has_value()) {
    return Status::AlreadyExists(StrFormat("slot %llu occupied",
                                           static_cast<unsigned long long>(id)));
  }
  IndexInsert(id, row);
  slots_[id] = std::move(row);
  ++live_rows_;
  return Status::OK();
}

Result<Row> Table::Get(RowId id) const {
  if (id >= slots_.size() || !slots_[id].has_value()) {
    return Status::NotFound("no such row");
  }
  return *slots_[id];
}

Status Table::Update(RowId id, Row row) {
  STRUCTURA_RETURN_IF_ERROR(ValidateRow(row));
  if (id >= slots_.size() || !slots_[id].has_value()) {
    return Status::NotFound("no such row");
  }
  IndexErase(id, *slots_[id]);
  IndexInsert(id, row);
  slots_[id] = std::move(row);
  return Status::OK();
}

Status Table::Delete(RowId id) {
  if (id >= slots_.size() || !slots_[id].has_value()) {
    return Status::NotFound("no such row");
  }
  IndexErase(id, *slots_[id]);
  slots_[id].reset();
  --live_rows_;
  return Status::OK();
}

void Table::Scan(const std::function<void(RowId, const Row&)>& fn) const {
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) fn(id, *slots_[id]);
  }
}

Status Table::CreateIndex(const std::string& column) {
  int col = schema_.ColumnIndex(column);
  if (col < 0) {
    return Status::InvalidArgument("no such column: " + column);
  }
  if (indexes_.count(column) > 0) {
    return Status::AlreadyExists("index exists on " + column);
  }
  auto index = std::make_unique<BTreeIndex>();
  for (RowId id = 0; id < slots_.size(); ++id) {
    if (slots_[id].has_value()) {
      index->Insert((*slots_[id])[static_cast<size_t>(col)], id);
    }
  }
  indexes_[column] = std::move(index);
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  return indexes_.count(column) > 0;
}

Result<std::vector<RowId>> Table::IndexLookup(const std::string& column,
                                              const Value& key) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + column);
  }
  return it->second->Lookup(key);
}

Result<std::vector<RowId>> Table::IndexRange(const std::string& column,
                                             const Value* lo,
                                             const Value* hi) const {
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    return Status::NotFound("no index on " + column);
  }
  return it->second->Range(lo, hi);
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (auto& [column, index] : indexes_) {
    int col = schema_.ColumnIndex(column);
    index->Insert(row[static_cast<size_t>(col)], id);
  }
}

void Table::IndexErase(RowId id, const Row& row) {
  for (auto& [column, index] : indexes_) {
    int col = schema_.ColumnIndex(column);
    index->Erase(row[static_cast<size_t>(col)], id);
  }
}

}  // namespace structura::rdbms
