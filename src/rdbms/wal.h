#ifndef STRUCTURA_RDBMS_WAL_H_
#define STRUCTURA_RDBMS_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/integrity.h"
#include "common/recordio.h"
#include "rdbms/lock_manager.h"
#include "rdbms/schema.h"

namespace structura::rdbms {

/// One write-ahead-log record. Data records carry both before and after
/// images: after-images drive redo at recovery, before-images drive
/// rollback of in-flight transactions at abort time.
struct LogRecord {
  enum class Type : uint8_t {
    kBegin,
    kCommit,
    kAbort,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kCheckpoint,
  };
  Type type = Type::kBegin;
  TxnId txn = 0;
  std::string table;
  RowId row_id = 0;
  Row before;
  Row after;
  /// For kCreateTable: serialized schema.
  std::string payload;
};

/// Everything ReadAll learned from one pass over a log file: the valid
/// records, where damage sat relative to them, and the raw framing
/// report (lost byte ranges, torn tail). Callers use `gaps` to drop
/// transactions that may have lost frames, and the report to log what
/// was truncated instead of silently returning a prefix.
struct WalReadResult {
  std::vector<LogRecord> records;
  /// Indices into `records` immediately *after* a damaged region: an
  /// entry `i` means frames were lost between records[i-1] and
  /// records[i] (i == 0: before the first surviving record). Sorted.
  std::vector<size_t> gaps;
  /// Frames whose checksums validated but whose payload failed to
  /// decode — counted as damage and reflected in `gaps` as well.
  uint64_t undecodable_frames = 0;
  /// Framing-level scan report (lost ranges, torn tail, salvage count).
  FrameScanReport frames;

  bool clean() const {
    return frames.clean() && undecodable_frames == 0;
  }
};

/// Append-only redo/undo log. Records are framed with a magic resync
/// marker, a CRC32C over the header, and a CRC32C over the payload
/// (common/recordio.h). Commit records are flushed before Commit
/// returns (durability point). At recovery, a torn tail left by a crash
/// is cleanly truncated, while mid-file bit-rot is *salvaged*: the
/// reader resyncs to the next valid frame and reports the lost range so
/// the database can drop only the damaged transactions.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status Append(const LogRecord& record);
  Status Flush();

  /// Reads every valid record from `path`, resyncing past damaged
  /// frames, and reports exactly what was lost (see WalReadResult). A
  /// missing file is an empty history.
  static Result<WalReadResult> ReadAll(const std::string& path);

  /// Verifies every frame of `path` (including decode) and folds the
  /// findings into `counters`: records_verified, corrupt_records,
  /// salvaged_records, torn_tail_bytes.
  static Status Scrub(const std::string& path,
                      IntegrityCounters* counters);

  /// Truncates the log (after a checkpoint made it redundant).
  Status Reset();

  size_t AppendedRecords() const { return appended_; }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  static std::string Encode(const LogRecord& record);
  static Result<LogRecord> Decode(const std::string& payload);

  std::string path_;
  std::ofstream out_;
  size_t appended_ = 0;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_WAL_H_
