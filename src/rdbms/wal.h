#ifndef STRUCTURA_RDBMS_WAL_H_
#define STRUCTURA_RDBMS_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/integrity.h"
#include "common/recordio.h"
#include "rdbms/lock_manager.h"
#include "rdbms/schema.h"

namespace structura::rdbms {

/// One write-ahead-log record. Data records carry both before and after
/// images: after-images drive redo at recovery, before-images drive
/// rollback of in-flight transactions at abort time.
struct LogRecord {
  enum class Type : uint8_t {
    kBegin,
    kCommit,
    kAbort,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kCheckpoint,
  };
  Type type = Type::kBegin;
  TxnId txn = 0;
  std::string table;
  RowId row_id = 0;
  Row before;
  Row after;
  /// For kCreateTable: serialized schema.
  std::string payload;
};

/// Everything ReadAll learned from one pass over a log file: the valid
/// records, where damage sat relative to them, and the raw framing
/// report (lost byte ranges, torn tail). Callers use `gaps` to drop
/// transactions that may have lost frames, and the report to log what
/// was truncated instead of silently returning a prefix.
struct WalReadResult {
  std::vector<LogRecord> records;
  /// Indices into `records` immediately *after* a damaged region: an
  /// entry `i` means frames were lost between records[i-1] and
  /// records[i] (i == 0: before the first surviving record). Sorted.
  std::vector<size_t> gaps;
  /// Frames whose checksums validated but whose payload failed to
  /// decode — counted as damage and reflected in `gaps` as well.
  uint64_t undecodable_frames = 0;
  /// Framing-level scan report (lost ranges, torn tail, salvage count).
  FrameScanReport frames;

  bool clean() const {
    return frames.clean() && undecodable_frames == 0;
  }
};

/// When Append acknowledges a commit record relative to fsync.
enum class WalSyncPolicy : uint8_t {
  /// Every commit fsyncs before it is acknowledged. Concurrent commits
  /// still share one fsync when they arrive while another is in flight.
  kAlways,
  /// Commits are acknowledged only after fsync, but the syncing thread
  /// (the "leader") first waits a short coalescing window so concurrent
  /// commits ride the same fsync — higher throughput, same guarantee.
  kGroupCommit,
  /// Commits never wait for fsync: a crash can lose the acknowledged
  /// tail (bounded by the OS flush interval). For data whose loss is
  /// tolerable, or benchmarking the cost of durability.
  kOff,
};

struct WalOptions {
  WalSyncPolicy sync_policy = WalSyncPolicy::kAlways;
  /// kGroupCommit only: how long the sync leader gathers followers
  /// before paying the fsync.
  uint64_t group_commit_window_us = 100;
  /// I/O environment; nullptr = Env::Default().
  Env* env = nullptr;
  /// Time source for the group-commit window; nullptr = real time.
  Clock* clock = nullptr;
};

/// Append-only redo/undo log. Records are framed with a magic resync
/// marker, a CRC32C over the header, and a CRC32C over the payload
/// (common/recordio.h). Commit records are made durable per the
/// configured WalSyncPolicy before Append returns (the durability
/// point is a real fsync, not a userspace flush). At recovery, a torn
/// tail left by a crash is cleanly truncated, while mid-file bit-rot is
/// *salvaged*: the reader resyncs to the next valid frame and reports
/// the lost range so the database can drop only the damaged
/// transactions.
///
/// Failure model: every write and sync goes through a WritableFile
/// (common/env.h) whose first i/o failure latches the file sticky — no
/// record is ever acknowledged after a failed write or fsync, and no
/// later operation silently retries past one. A failed log refuses all
/// further appends with the original error; recovery is explicit (a
/// checkpoint calls Reset(), which opens a fresh file once the
/// checkpoint durably superseded the log).
///
/// Threading: Append/AppendRecord/Flush/Reset must be externally
/// serialized (the database holds its wal mutex); WaitDurable and Sync
/// are safe to call concurrently from any thread, which is what group
/// commit exploits — appends happen under the caller's lock, the
/// durability wait happens outside it.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path, WalOptions options);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Appends one record. Commit records additionally wait for
  /// durability per the sync policy (equivalent to AppendRecord +
  /// WaitDurable).
  Status Append(const LogRecord& record);

  /// Appends one record WITHOUT waiting for durability and returns its
  /// ticket (monotone LSN). Callers acknowledge the record only after
  /// WaitDurable(ticket) — the two-phase shape that lets a database
  /// append under its own mutex but wait for the fsync outside it, so
  /// concurrent commits coalesce into one fsync.
  Result<uint64_t> AppendRecord(const LogRecord& record);

  /// Blocks until every record with ticket <= `ticket` is durable per
  /// the sync policy (kOff: returns immediately). One waiter becomes
  /// the sync leader and fsyncs for everyone; the rest ride along.
  /// Returns the log's sticky error if the write or sync failed — the
  /// record MUST NOT be acknowledged in that case.
  Status WaitDurable(uint64_t ticket);

  /// Pushes buffered bytes to the OS. NOT a durability point.
  Status Flush();

  /// Forces an fsync covering everything appended so far, regardless
  /// of policy.
  Status Sync();

  /// Reads every valid record from `path`, resyncing past damaged
  /// frames, and reports exactly what was lost (see WalReadResult). A
  /// missing file is an empty history.
  static Result<WalReadResult> ReadAll(const std::string& path);

  /// Verifies every frame of `path` (including decode) and folds the
  /// findings into `counters`: records_verified, corrupt_records,
  /// salvaged_records, torn_tail_bytes.
  static Status Scrub(const std::string& path,
                      IntegrityCounters* counters);

  /// Truncates the log (after a checkpoint made it redundant). Opens a
  /// fresh file handle, so this is also the recovery point for a
  /// sticky-failed log: the failed records were never acknowledged and
  /// the checkpoint captured the authoritative state. The truncation
  /// itself is fsynced before Reset returns — otherwise a crash could
  /// resurrect the whole pre-checkpoint log and recovery would replay
  /// records the checkpoint already contains.
  Status Reset();

  /// True once a write or sync failed: the log refuses further appends
  /// with FailedStatus() until a checkpoint Reset()s it.
  bool Failed() const;
  Status FailedStatus() const;

  size_t AppendedRecords() const { return appended_; }
  /// Ticket of the most recently appended record.
  uint64_t LastLsn() const;

 private:
  WriteAheadLog(std::string path, WalOptions options)
      : path_(std::move(path)), options_(options) {}

  /// Opens/reopens the file handle (append or truncate). Caller holds
  /// sync_mutex_.
  Status OpenFileLocked(bool truncate);
  /// Records the wal_sticky_latch flight-recorder event the first time
  /// the latched write path is observed this epoch. Caller holds
  /// sync_mutex_.
  void NoteStickyLocked();
  /// Leader/follower fsync protocol behind WaitDurable and Sync.
  Status SyncTo(uint64_t ticket);

  static std::string Encode(const LogRecord& record);
  static Result<LogRecord> Decode(const std::string& payload);

  std::string path_;
  WalOptions options_;
  size_t appended_ = 0;

  /// Guards the fields below. file_ itself serializes its operations;
  /// this mutex serializes the durability bookkeeping around them.
  mutable std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  std::unique_ptr<WritableFile> file_;
  /// Ticket of the last record fully handed to file_->Append.
  uint64_t written_lsn_ = 0;
  /// Every record with ticket <= durable_lsn_ survived an fsync.
  uint64_t durable_lsn_ = 0;
  /// A leader is currently gathering/syncing; followers wait.
  bool sync_in_progress_ = false;
  /// Bumped by Reset(): outstanding WaitDurable tickets from before the
  /// reset return OK, because the checkpoint that triggered the reset
  /// durably superseded every record they cover.
  uint64_t epoch_ = 0;
  /// One wal_sticky_latch event per epoch (cleared by Reset), however
  /// many appends observe the latched handle.
  bool sticky_event_recorded_ = false;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_WAL_H_
