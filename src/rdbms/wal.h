#ifndef STRUCTURA_RDBMS_WAL_H_
#define STRUCTURA_RDBMS_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "rdbms/lock_manager.h"
#include "rdbms/schema.h"

namespace structura::rdbms {

/// One write-ahead-log record. Data records carry both before and after
/// images: after-images drive redo at recovery, before-images drive
/// rollback of in-flight transactions at abort time.
struct LogRecord {
  enum class Type : uint8_t {
    kBegin,
    kCommit,
    kAbort,
    kInsert,
    kUpdate,
    kDelete,
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kCheckpoint,
  };
  Type type = Type::kBegin;
  TxnId txn = 0;
  std::string table;
  RowId row_id = 0;
  Row before;
  Row after;
  /// For kCreateTable: serialized schema.
  std::string payload;
};

/// Append-only redo/undo log with per-record checksums. Commit records are
/// flushed before Commit returns (durability point); a torn tail left by a
/// crash is detected by checksum and ignored by ReadAll.
class WriteAheadLog {
 public:
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  Status Append(const LogRecord& record);
  Status Flush();

  /// Reads every valid record from `path`, stopping at the first
  /// corrupt/torn record.
  static Result<std::vector<LogRecord>> ReadAll(const std::string& path);

  /// Truncates the log (after a checkpoint made it redundant).
  Status Reset();

  size_t AppendedRecords() const { return appended_; }

 private:
  explicit WriteAheadLog(std::string path) : path_(std::move(path)) {}

  static std::string Encode(const LogRecord& record);
  static Result<LogRecord> Decode(const std::string& payload);

  std::string path_;
  std::ofstream out_;
  size_t appended_ = 0;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_WAL_H_
