#ifndef STRUCTURA_RDBMS_BTREE_H_
#define STRUCTURA_RDBMS_BTREE_H_

#include <memory>
#include <vector>

#include "rdbms/schema.h"
#include "rdbms/value.h"

namespace structura::rdbms {

/// In-memory B+-tree mapping Value keys to RowIds. Duplicate keys are
/// supported (an index over a non-unique column). Leaves are chained for
/// ordered range scans. Fanout is fixed; splits propagate upward in the
/// classic way.
class BTreeIndex {
 public:
  static constexpr size_t kFanout = 64;  // max entries per node

  BTreeIndex();
  ~BTreeIndex();
  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const Value& key, RowId row);

  /// Removes one (key, row) pair; returns false if absent. (Underflow is
  /// tolerated rather than rebalanced — nodes may become sparse, which
  /// keeps deletion simple and is fine for an in-memory index.)
  bool Erase(const Value& key, RowId row);

  /// All rows with exactly `key`, in insertion-ish order.
  std::vector<RowId> Lookup(const Value& key) const;

  /// All rows with lo <= key <= hi (either bound may be omitted by
  /// passing nullptr), in key order.
  std::vector<RowId> Range(const Value* lo, const Value* hi) const;

  size_t size() const { return size_; }

  /// Depth of the tree (1 = a single leaf). Exposed for tests.
  size_t height() const;

  /// Validates B+-tree invariants (key ordering within and across nodes,
  /// child separation); returns false and logs on violation. Test hook.
  bool CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertRec(Node* node, const Value& key, RowId row);
  bool CheckNode(const Node* node, const Value* lo, const Value* hi) const;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace structura::rdbms

#endif  // STRUCTURA_RDBMS_BTREE_H_
