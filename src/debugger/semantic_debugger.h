#ifndef STRUCTURA_DEBUGGER_SEMANTIC_DEBUGGER_H_
#define STRUCTURA_DEBUGGER_SEMANTIC_DEBUGGER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ie/fact.h"

namespace structura::debugger {

/// Learned numeric plausibility interval for an attribute. Robust to the
/// very outliers it is meant to catch: bounds come from median +/- k*MAD.
struct RangeConstraint {
  double lo = 0;
  double hi = 0;
  size_t support = 0;  // samples the constraint was learned from

  bool Violates(double v) const { return v < lo || v > hi; }
};

/// Coarse surface-format classes for string attributes.
enum class FormatClass : uint8_t {
  kInteger,
  kDecimal,
  kCapitalizedName,
  kFreeText,
};

const char* FormatClassName(FormatClass f);

struct FormatConstraint {
  FormatClass format = FormatClass::kFreeText;
  size_t support = 0;
};

/// A flagged fact, in the spirit of the paper's example: "if this module
/// has learned that the monthly temperature of a city cannot exceed 130
/// degrees, then it can flag an extracted temperature of 135 as
/// suspicious" (Section 4, Part VI).
struct Violation {
  uint64_t fact_id = 0;
  std::string subject;
  std::string attribute;
  std::string value;
  std::string message;
};

/// Learns per-attribute constraints from extracted facts, then monitors
/// fact streams and flags values out of sync with the learned semantics.
class SemanticDebugger {
 public:
  struct Options {
    /// Minimum samples before a constraint is trusted.
    size_t min_support = 10;
    /// Half-width multiplier: bounds are median +/- k * MAD.
    double mad_k = 6.0;
    /// Attributes matching this prefix are pooled per attribute name
    /// (default behavior anyway; kept for clarity).
    double format_majority = 0.9;
  };

  SemanticDebugger() : SemanticDebugger(Options()) {}
  explicit SemanticDebugger(Options options) : options_(options) {}

  /// Learns range constraints for numeric attributes and format classes
  /// for the rest. Replaces previously learned state.
  void LearnFromFacts(const ie::FactSet& facts);

  /// Flags facts violating learned constraints.
  std::vector<Violation> Check(const ie::FactSet& facts) const;

  /// Single-value check, for streaming use.
  std::optional<Violation> CheckOne(const ie::ExtractedFact& fact) const;

  const std::map<std::string, RangeConstraint>& ranges() const {
    return ranges_;
  }
  const std::map<std::string, FormatConstraint>& formats() const {
    return formats_;
  }

  /// Classification helper, exposed for tests.
  static FormatClass ClassifyValue(const std::string& value);

 private:
  Options options_;
  std::map<std::string, RangeConstraint> ranges_;
  std::map<std::string, FormatConstraint> formats_;
};

/// Part VI also monitors the running system itself: throughput counters
/// and alert thresholds for the system manager.
class SystemMonitor {
 public:
  void RecordDocsProcessed(size_t n) { docs_ += n; }
  void RecordFactsExtracted(size_t n) { facts_ += n; }
  void RecordViolations(size_t n) { violations_ += n; }
  void RecordTasksAnswered(size_t n) { tasks_ += n; }

  /// Alert when the violation rate among extracted facts exceeds
  /// `threshold` (and enough facts have been seen to judge).
  bool ViolationAlert(double threshold) const {
    return facts_ >= 50 &&
           static_cast<double>(violations_) / static_cast<double>(facts_) >
               threshold;
  }

  std::string Report() const;

 private:
  size_t docs_ = 0;
  size_t facts_ = 0;
  size_t violations_ = 0;
  size_t tasks_ = 0;
};

}  // namespace structura::debugger

#endif  // STRUCTURA_DEBUGGER_SEMANTIC_DEBUGGER_H_
