#include "debugger/semantic_debugger.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/strings.h"

namespace structura::debugger {
namespace {

/// Parses a numeric value, tolerating thousands separators.
bool ParseNumeric(const std::string& value, double* out) {
  std::string cleaned;
  for (char c : value) {
    if (c != ',') cleaned += c;
  }
  return ParseDouble(cleaned, out);
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  return v[mid];
}

}  // namespace

const char* FormatClassName(FormatClass f) {
  switch (f) {
    case FormatClass::kInteger: return "integer";
    case FormatClass::kDecimal: return "decimal";
    case FormatClass::kCapitalizedName: return "capitalized_name";
    case FormatClass::kFreeText: return "free_text";
  }
  return "?";
}

FormatClass SemanticDebugger::ClassifyValue(const std::string& value) {
  double unused;
  if (ParseNumeric(value, &unused)) {
    return value.find('.') == std::string::npos ? FormatClass::kInteger
                                                : FormatClass::kDecimal;
  }
  // Capitalized name: every word starts uppercase, only letters and
  // separators.
  bool name_like = !value.empty();
  bool at_word_start = true;
  for (char c : value) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) {
      if (at_word_start && !std::isupper(u)) {
        name_like = false;
        break;
      }
      at_word_start = false;
    } else if (c == ' ' || c == '.' || c == ',' || c == '\'' || c == '-') {
      at_word_start = true;
    } else {
      name_like = false;
      break;
    }
  }
  return name_like ? FormatClass::kCapitalizedName : FormatClass::kFreeText;
}

void SemanticDebugger::LearnFromFacts(const ie::FactSet& facts) {
  ranges_.clear();
  formats_.clear();
  std::map<std::string, std::vector<double>> numeric_samples;
  std::map<std::string, std::map<FormatClass, size_t>> format_tallies;
  std::map<std::string, size_t> totals;
  for (const ie::ExtractedFact& f : facts.facts) {
    ++totals[f.attribute];
    double v;
    if (ParseNumeric(f.value, &v)) {
      numeric_samples[f.attribute].push_back(v);
    }
    ++format_tallies[f.attribute][ClassifyValue(f.value)];
  }
  for (auto& [attr, samples] : numeric_samples) {
    // Only learn a range when the attribute is predominantly numeric.
    if (samples.size() < options_.min_support) continue;
    if (samples.size() * 2 < totals[attr]) continue;
    double med = Median(samples);
    std::vector<double> deviations;
    deviations.reserve(samples.size());
    for (double s : samples) deviations.push_back(std::abs(s - med));
    double mad = Median(deviations);
    // Degenerate spread (constant attribute): keep a minimal width.
    double width = std::max(mad * options_.mad_k, 1.0);
    RangeConstraint rc;
    rc.lo = med - width;
    rc.hi = med + width;
    rc.support = samples.size();
    ranges_[attr] = rc;
  }
  for (auto& [attr, tally] : format_tallies) {
    size_t total = totals[attr];
    if (total < options_.min_support) continue;
    for (const auto& [format, count] : tally) {
      if (static_cast<double>(count) >=
          options_.format_majority * static_cast<double>(total)) {
        FormatConstraint fc;
        fc.format = format;
        fc.support = total;
        formats_[attr] = fc;
        break;
      }
    }
  }
}

std::optional<Violation> SemanticDebugger::CheckOne(
    const ie::ExtractedFact& fact) const {
  auto range_it = ranges_.find(fact.attribute);
  if (range_it != ranges_.end()) {
    double v;
    if (ParseNumeric(fact.value, &v)) {
      if (range_it->second.Violates(v)) {
        Violation viol;
        viol.fact_id = fact.id;
        viol.subject = fact.subject;
        viol.attribute = fact.attribute;
        viol.value = fact.value;
        viol.message = StrFormat(
            "value %s outside learned range [%.1f, %.1f] (support %zu)",
            fact.value.c_str(), range_it->second.lo, range_it->second.hi,
            range_it->second.support);
        return viol;
      }
      return std::nullopt;
    }
  }
  auto fmt_it = formats_.find(fact.attribute);
  if (fmt_it != formats_.end()) {
    FormatClass got = ClassifyValue(fact.value);
    FormatClass want = fmt_it->second.format;
    bool ok = got == want ||
              (want == FormatClass::kDecimal &&
               got == FormatClass::kInteger);
    if (!ok) {
      Violation viol;
      viol.fact_id = fact.id;
      viol.subject = fact.subject;
      viol.attribute = fact.attribute;
      viol.value = fact.value;
      viol.message = StrFormat(
          "value \"%s\" has format %s but attribute is usually %s",
          fact.value.c_str(), FormatClassName(got),
          FormatClassName(want));
      return viol;
    }
  }
  return std::nullopt;
}

std::vector<Violation> SemanticDebugger::Check(
    const ie::FactSet& facts) const {
  std::vector<Violation> out;
  for (const ie::ExtractedFact& f : facts.facts) {
    std::optional<Violation> v = CheckOne(f);
    if (v.has_value()) out.push_back(std::move(*v));
  }
  return out;
}

std::string SystemMonitor::Report() const {
  return StrFormat(
      "docs=%zu facts=%zu violations=%zu tasks=%zu violation_rate=%.4f",
      docs_, facts_, violations_, tasks_,
      facts_ == 0 ? 0.0
                  : static_cast<double>(violations_) /
                        static_cast<double>(facts_));
}

}  // namespace structura::debugger
