#include "hi/simulated_user.h"

#include "common/strings.h"

namespace structura::hi {

Answer SimulatedUser::Respond(const Task& task, const std::string& truth) {
  Answer a;
  a.task_id = task.id;
  a.user = profile_.name;
  if (task.options.empty()) {
    a.choice = "";
    return a;
  }
  if (rng_.NextBool(profile_.spam_rate)) {
    a.choice = task.options[rng_.NextBounded(task.options.size())];
    return a;
  }
  if (rng_.NextBool(profile_.accuracy)) {
    a.choice = truth;
    return a;
  }
  // A wrong answer: uniform over the other options (or the truth when it
  // is the only option).
  std::vector<const std::string*> wrong;
  for (const std::string& opt : task.options) {
    if (opt != truth) wrong.push_back(&opt);
  }
  a.choice = wrong.empty() ? truth
                           : *wrong[rng_.NextBounded(wrong.size())];
  return a;
}

std::vector<SimulatedUser> MakeCrowd(size_t n, double min_accuracy,
                                     double max_accuracy, uint64_t seed) {
  std::vector<SimulatedUser> crowd;
  crowd.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SimulatedUser::Profile p;
    p.name = StrFormat("user_%03zu", i);
    p.accuracy =
        n <= 1 ? min_accuracy
               : min_accuracy + (max_accuracy - min_accuracy) *
                                    static_cast<double>(i) /
                                    static_cast<double>(n - 1);
    p.seed = seed + i * 7919;
    crowd.emplace_back(std::move(p));
  }
  return crowd;
}

}  // namespace structura::hi
