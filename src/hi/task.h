#ifndef STRUCTURA_HI_TASK_H_
#define STRUCTURA_HI_TASK_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

namespace structura::hi {

/// A question the system poses to humans. The paper's principle
/// (Section 3.3): isolate decisions that are hard for automatic
/// techniques but easy for people — verifying a match, confirming a
/// value — and route exactly those to users.
struct Task {
  enum class Type : uint8_t {
    kVerifyMatch,   // "Do A and B refer to the same entity?" yes/no
    kVerifyFact,    // "Is <attr> of <subject> really <value>?" yes/no
    kChooseValue,   // "Which value of <attr> is right for <subject>?"
  };

  uint64_t id = 0;
  Type type = Type::kVerifyFact;
  std::string question;              // rendered natural-language prompt
  std::vector<std::string> options;  // candidate answers ("yes","no",...)
  /// System's confidence in option[0] before asking; tasks near 0.5 are
  /// the most informative and are scheduled first.
  double prior = 0.5;
  /// Opaque back-reference to the artifact under review (belief index,
  /// pair index...), interpreted by the caller.
  uint64_t ref = 0;
};

/// One human answer to a task.
struct Answer {
  uint64_t task_id = 0;
  std::string user;
  std::string choice;
};

/// Priority queue ordering tasks by expected information gain, highest
/// first (|prior - 0.5| smallest). FIFO among ties.
class TaskQueue {
 public:
  void Push(Task task);
  /// Most informative pending task, or nullopt when drained.
  std::optional<Task> Pop();
  size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

 private:
  struct Entry {
    double value;    // 0.5 - |prior - 0.5|, larger = more informative
    uint64_t seq;    // arrival order for stable ties
    Task task;
    bool operator<(const Entry& other) const {
      if (value != other.value) return value < other.value;
      return seq > other.seq;  // earlier arrivals first
    }
  };
  std::priority_queue<Entry> heap_;
  uint64_t next_seq_ = 0;
};

/// Renders a yes/no match-verification task.
Task MakeVerifyMatchTask(uint64_t id, const std::string& a,
                         const std::string& b, double prior, uint64_t ref);

/// Renders a yes/no fact-verification task.
Task MakeVerifyFactTask(uint64_t id, const std::string& subject,
                        const std::string& attribute,
                        const std::string& value, double prior,
                        uint64_t ref);

/// Renders a choose-one task over candidate values.
Task MakeChooseValueTask(uint64_t id, const std::string& subject,
                         const std::string& attribute,
                         std::vector<std::string> candidates, double prior,
                         uint64_t ref);

}  // namespace structura::hi

#endif  // STRUCTURA_HI_TASK_H_
