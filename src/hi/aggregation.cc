#include "hi/aggregation.h"

#include <algorithm>
#include <cmath>

namespace structura::hi {
namespace {

AggregatedAnswer FromTally(const std::map<std::string, double>& tally) {
  AggregatedAnswer out;
  double total = 0, best = -1;
  // std::map iteration is ordered, so ties resolve to the smaller key.
  for (const auto& [choice, weight] : tally) {
    total += weight;
    if (weight > best) {
      best = weight;
      out.choice = choice;
    }
  }
  if (total > 0) out.confidence = best / total;
  return out;
}

}  // namespace

AggregatedAnswer MajorityVote(const std::vector<Answer>& answers) {
  std::map<std::string, double> tally;
  for (const Answer& a : answers) tally[a.choice] += 1.0;
  return FromTally(tally);
}

AggregatedAnswer WeightedVote(
    const std::vector<Answer>& answers,
    const std::map<std::string, double>& user_weights) {
  std::map<std::string, double> tally;
  for (const Answer& a : answers) {
    auto it = user_weights.find(a.user);
    tally[a.choice] += it == user_weights.end() ? 1.0 : it->second;
  }
  return FromTally(tally);
}

DawidSkeneResult DawidSkene(
    const std::vector<Answer>& all_answers,
    const std::map<uint64_t, std::vector<std::string>>& task_options,
    int max_iterations) {
  DawidSkeneResult result;
  // Group answers by task.
  std::map<uint64_t, std::vector<const Answer*>> by_task;
  for (const Answer& a : all_answers) by_task[a.task_id].push_back(&a);

  // Posterior over options per task; initialize from majority vote.
  std::map<uint64_t, std::map<std::string, double>> posterior;
  for (const auto& [task, answers] : by_task) {
    auto opts_it = task_options.find(task);
    if (opts_it == task_options.end()) continue;
    std::map<std::string, double> p;
    for (const std::string& opt : opts_it->second) p[opt] = 1e-6;
    for (const Answer* a : answers) {
      if (p.count(a->choice)) p[a->choice] += 1.0;
    }
    double z = 0;
    for (auto& [o, v] : p) z += v;
    for (auto& [o, v] : p) v /= z;
    posterior[task] = std::move(p);
  }

  std::map<std::string, double> accuracy;
  for (const Answer& a : all_answers) accuracy[a.user] = 0.7;

  for (int iter = 0; iter < max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // M-step: user accuracy = expected agreement with posteriors.
    std::map<std::string, double> agree, count;
    for (const Answer& a : all_answers) {
      auto post_it = posterior.find(a.task_id);
      if (post_it == posterior.end()) continue;
      auto p_it = post_it->second.find(a.choice);
      agree[a.user] += p_it == post_it->second.end() ? 0 : p_it->second;
      count[a.user] += 1;
    }
    double max_delta = 0;
    for (auto& [user, acc] : accuracy) {
      if (count[user] == 0) continue;
      // Clamp away from 0/1 to keep likelihoods finite.
      double updated =
          std::clamp(agree[user] / count[user], 0.05, 0.95);
      max_delta = std::max(max_delta, std::abs(updated - acc));
      acc = updated;
    }
    // E-step: recompute posteriors from accuracies.
    for (auto& [task, p] : posterior) {
      const std::vector<std::string>& opts = task_options.at(task);
      size_t k = std::max<size_t>(2, opts.size());
      std::map<std::string, double> log_p;
      for (const std::string& opt : opts) log_p[opt] = 0;
      for (const Answer* a : by_task[task]) {
        double acc = accuracy[a->user];
        for (const std::string& opt : opts) {
          double like = a->choice == opt
                            ? acc
                            : (1.0 - acc) / static_cast<double>(k - 1);
          log_p[opt] += std::log(std::max(like, 1e-9));
        }
      }
      double max_log = -1e300;
      for (const auto& [o, lp] : log_p) max_log = std::max(max_log, lp);
      double z = 0;
      for (auto& [o, lp] : log_p) {
        lp = std::exp(lp - max_log);
        z += lp;
      }
      for (const std::string& opt : opts) p[opt] = log_p[opt] / z;
    }
    if (max_delta < 1e-4 && iter > 0) break;
  }

  result.user_accuracy = accuracy;
  for (const auto& [task, p] : posterior) {
    AggregatedAnswer best;
    for (const auto& [opt, prob] : p) {
      if (prob > best.confidence) {
        best.choice = opt;
        best.confidence = prob;
      }
    }
    result.task_answers[task] = std::move(best);
  }
  return result;
}

}  // namespace structura::hi
