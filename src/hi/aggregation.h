#ifndef STRUCTURA_HI_AGGREGATION_H_
#define STRUCTURA_HI_AGGREGATION_H_

#include <map>
#include <string>
#include <vector>

#include "hi/task.h"

namespace structura::hi {

/// Consensus over a set of answers to one task.
struct AggregatedAnswer {
  std::string choice;
  double confidence = 0;  // share of (weighted) votes for `choice`
};

/// Unweighted majority; ties break toward the lexicographically smaller
/// option for determinism.
AggregatedAnswer MajorityVote(const std::vector<Answer>& answers);

/// Votes weighted per user (e.g. by reputation). Missing users weigh 1.
AggregatedAnswer WeightedVote(
    const std::vector<Answer>& answers,
    const std::map<std::string, double>& user_weights);

/// Dawid-Skene (one-coin variant): jointly estimates per-user accuracy
/// and per-task answer posteriors by EM across *all* tasks. Users who
/// agree with emerging consensus gain weight; spammers lose it — the
/// mechanism that lets mass collaboration beat naive majority when the
/// crowd is noisy (E3).
struct DawidSkeneResult {
  std::map<uint64_t, AggregatedAnswer> task_answers;
  std::map<std::string, double> user_accuracy;
  int iterations_run = 0;
};

DawidSkeneResult DawidSkene(const std::vector<Answer>& all_answers,
                            const std::map<uint64_t, std::vector<std::string>>&
                                task_options,
                            int max_iterations = 20);

}  // namespace structura::hi

#endif  // STRUCTURA_HI_AGGREGATION_H_
