#ifndef STRUCTURA_HI_SIMULATED_USER_H_
#define STRUCTURA_HI_SIMULATED_USER_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "hi/task.h"

namespace structura::hi {

/// A calibrated stand-in for a human contributor (substitution documented
/// in DESIGN.md: the paper's mass-collaboration claims concern aggregate
/// effects of feedback volume and quality, which a per-user accuracy/
/// spam model reproduces).
class SimulatedUser {
 public:
  struct Profile {
    std::string name;
    /// Probability of answering correctly when attempting the task.
    double accuracy = 0.8;
    /// Probability of answering at random regardless of the question
    /// (lazy/spam behavior).
    double spam_rate = 0.0;
    uint64_t seed = 1;
  };

  explicit SimulatedUser(Profile profile)
      : profile_(std::move(profile)), rng_(profile_.seed) {}

  const std::string& name() const { return profile_.name; }
  double true_accuracy() const { return profile_.accuracy; }

  /// Answers `task` given the hidden ground-truth option. Correct with
  /// probability `accuracy`; otherwise a uniformly random *wrong* option.
  /// Spam answers ignore the truth entirely.
  Answer Respond(const Task& task, const std::string& truth);

 private:
  Profile profile_;
  Rng rng_;
};

/// Builds a crowd of `n` users with accuracies uniformly spaced in
/// [min_accuracy, max_accuracy], deterministic from `seed`.
std::vector<SimulatedUser> MakeCrowd(size_t n, double min_accuracy,
                                     double max_accuracy, uint64_t seed);

}  // namespace structura::hi

#endif  // STRUCTURA_HI_SIMULATED_USER_H_
