#include "hi/task.h"

#include <cmath>

#include "common/strings.h"

namespace structura::hi {

void TaskQueue::Push(Task task) {
  Entry e;
  e.value = 0.5 - std::abs(task.prior - 0.5);
  e.seq = next_seq_++;
  e.task = std::move(task);
  heap_.push(std::move(e));
}

std::optional<Task> TaskQueue::Pop() {
  if (heap_.empty()) return std::nullopt;
  Task t = heap_.top().task;
  heap_.pop();
  return t;
}

Task MakeVerifyMatchTask(uint64_t id, const std::string& a,
                         const std::string& b, double prior, uint64_t ref) {
  Task t;
  t.id = id;
  t.type = Task::Type::kVerifyMatch;
  t.question = StrFormat(
      "Do \"%s\" and \"%s\" refer to the same entity?", a.c_str(),
      b.c_str());
  t.options = {"yes", "no"};
  t.prior = prior;
  t.ref = ref;
  return t;
}

Task MakeVerifyFactTask(uint64_t id, const std::string& subject,
                        const std::string& attribute,
                        const std::string& value, double prior,
                        uint64_t ref) {
  Task t;
  t.id = id;
  t.type = Task::Type::kVerifyFact;
  t.question =
      StrFormat("Is the %s of \"%s\" really \"%s\"?", attribute.c_str(),
                subject.c_str(), value.c_str());
  t.options = {"yes", "no"};
  t.prior = prior;
  t.ref = ref;
  return t;
}

Task MakeChooseValueTask(uint64_t id, const std::string& subject,
                         const std::string& attribute,
                         std::vector<std::string> candidates, double prior,
                         uint64_t ref) {
  Task t;
  t.id = id;
  t.type = Task::Type::kChooseValue;
  t.question = StrFormat("Which is the correct %s of \"%s\"?",
                         attribute.c_str(), subject.c_str());
  t.options = std::move(candidates);
  t.prior = prior;
  t.ref = ref;
  return t;
}

}  // namespace structura::hi
