#include "storage/diff.h"

#include <algorithm>

#include "common/strings.h"

namespace structura::storage {
namespace {

/// Splits text into lines, each keeping its '\n' terminator (the final
/// line may lack one). Concatenating the pieces reproduces the input
/// byte-for-byte, which makes delta round-trips exact.
std::vector<std::string> SplitLinesKeepEnds(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(start));
      break;
    }
    lines.push_back(text.substr(start, nl - start + 1));
    start = nl + 1;
  }
  return lines;
}

constexpr size_t kMaxLcsCells = 4u << 20;  // 4M DP cells

}  // namespace

size_t Delta::SerializedSize() const {
  size_t total = 0;
  for (const DiffOp& op : ops) {
    total += 16;  // op header estimate (kind + count digits + newline)
    if (op.kind == DiffOp::Kind::kInsert) {
      for (const std::string& line : op.lines) total += line.size() + 12;
    }
  }
  return total;
}

std::string Delta::Serialize() const {
  std::string out;
  for (const DiffOp& op : ops) {
    switch (op.kind) {
      case DiffOp::Kind::kCopy:
        out += StrFormat("C %u\n", op.count);
        break;
      case DiffOp::Kind::kSkip:
        out += StrFormat("S %u\n", op.count);
        break;
      case DiffOp::Kind::kInsert:
        out += StrFormat("I %zu\n", op.lines.size());
        for (const std::string& line : op.lines) {
          out += StrFormat("%zu:", line.size());
          out += line;
          out += '\n';
        }
        break;
    }
  }
  return out;
}

Result<Delta> Delta::Deserialize(const std::string& data) {
  Delta delta;
  size_t pos = 0;
  auto read_line = [&](std::string* line) -> bool {
    if (pos >= data.size()) return false;
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) nl = data.size();
    *line = data.substr(pos, nl - pos);
    pos = nl + 1;
    return true;
  };
  std::string line;
  while (pos < data.size()) {
    if (!read_line(&line) || line.size() < 3) {
      return Status::Corruption("truncated delta op");
    }
    char kind = line[0];
    int64_t count = 0;
    if (!ParseInt64(line.substr(2), &count) || count < 0) {
      return Status::Corruption("bad delta count");
    }
    DiffOp op;
    op.count = static_cast<uint32_t>(count);
    if (kind == 'C') {
      op.kind = DiffOp::Kind::kCopy;
    } else if (kind == 'S') {
      op.kind = DiffOp::Kind::kSkip;
    } else if (kind == 'I') {
      op.kind = DiffOp::Kind::kInsert;
      for (int64_t i = 0; i < count; ++i) {
        // "<len>:" prefix, then len raw bytes, then '\n'.
        size_t colon = data.find(':', pos);
        if (colon == std::string::npos) {
          return Status::Corruption("bad insert entry");
        }
        int64_t len = 0;
        if (!ParseInt64(data.substr(pos, colon - pos), &len) || len < 0) {
          return Status::Corruption("bad insert length");
        }
        pos = colon + 1;
        if (pos + static_cast<size_t>(len) > data.size()) {
          return Status::Corruption("insert overruns delta");
        }
        op.lines.push_back(data.substr(pos, len));
        pos += len + 1;  // skip trailing separator newline
      }
    } else {
      return Status::Corruption("unknown delta op kind");
    }
    delta.ops.push_back(std::move(op));
  }
  return delta;
}

Delta ComputeDelta(const std::string& base, const std::string& target) {
  std::vector<std::string> a = SplitLinesKeepEnds(base);
  std::vector<std::string> b = SplitLinesKeepEnds(target);

  // Trim common prefix and suffix; they become leading/trailing copies.
  size_t prefix = 0;
  while (prefix < a.size() && prefix < b.size() && a[prefix] == b[prefix]) {
    ++prefix;
  }
  size_t suffix = 0;
  while (suffix < a.size() - prefix && suffix < b.size() - prefix &&
         a[a.size() - 1 - suffix] == b[b.size() - 1 - suffix]) {
    ++suffix;
  }
  const size_t am = a.size() - prefix - suffix;
  const size_t bm = b.size() - prefix - suffix;

  Delta delta;
  auto push_copy = [&](uint32_t n) {
    if (n == 0) return;
    if (!delta.ops.empty() && delta.ops.back().kind == DiffOp::Kind::kCopy) {
      delta.ops.back().count += n;
    } else {
      DiffOp op;
      op.kind = DiffOp::Kind::kCopy;
      op.count = n;
      delta.ops.push_back(op);
    }
  };
  auto push_skip = [&](uint32_t n) {
    if (n == 0) return;
    if (!delta.ops.empty() && delta.ops.back().kind == DiffOp::Kind::kSkip) {
      delta.ops.back().count += n;
    } else {
      DiffOp op;
      op.kind = DiffOp::Kind::kSkip;
      op.count = n;
      delta.ops.push_back(op);
    }
  };
  auto push_insert = [&](const std::string& line) {
    if (delta.ops.empty() ||
        delta.ops.back().kind != DiffOp::Kind::kInsert) {
      DiffOp op;
      op.kind = DiffOp::Kind::kInsert;
      delta.ops.push_back(op);
    }
    delta.ops.back().lines.push_back(line);
    delta.ops.back().count = static_cast<uint32_t>(
        delta.ops.back().lines.size());
  };

  push_copy(static_cast<uint32_t>(prefix));

  if (am * bm <= kMaxLcsCells && am > 0 && bm > 0) {
    // LCS DP over the middle section.
    std::vector<std::vector<uint32_t>> dp(am + 1,
                                          std::vector<uint32_t>(bm + 1, 0));
    for (size_t i = am; i-- > 0;) {
      for (size_t j = bm; j-- > 0;) {
        if (a[prefix + i] == b[prefix + j]) {
          dp[i][j] = dp[i + 1][j + 1] + 1;
        } else {
          dp[i][j] = std::max(dp[i + 1][j], dp[i][j + 1]);
        }
      }
    }
    size_t i = 0, j = 0;
    while (i < am && j < bm) {
      if (a[prefix + i] == b[prefix + j]) {
        push_copy(1);
        ++i;
        ++j;
      } else if (dp[i + 1][j] >= dp[i][j + 1]) {
        push_skip(1);
        ++i;
      } else {
        push_insert(b[prefix + j]);
        ++j;
      }
    }
    push_skip(static_cast<uint32_t>(am - i));
    for (; j < bm; ++j) push_insert(b[prefix + j]);
  } else {
    // Middle replacement fallback for very large inputs.
    push_skip(static_cast<uint32_t>(am));
    for (size_t j = 0; j < bm; ++j) push_insert(b[prefix + j]);
  }

  push_copy(static_cast<uint32_t>(suffix));
  return delta;
}

Result<std::string> ApplyDelta(const std::string& base,
                               const Delta& delta) {
  std::vector<std::string> a = SplitLinesKeepEnds(base);
  std::string out;
  size_t i = 0;
  for (const DiffOp& op : delta.ops) {
    switch (op.kind) {
      case DiffOp::Kind::kCopy:
        if (i + op.count > a.size()) {
          return Status::Corruption("delta copy past end of base");
        }
        for (uint32_t k = 0; k < op.count; ++k) out += a[i++];
        break;
      case DiffOp::Kind::kSkip:
        if (i + op.count > a.size()) {
          return Status::Corruption("delta skip past end of base");
        }
        i += op.count;
        break;
      case DiffOp::Kind::kInsert:
        for (const std::string& line : op.lines) out += line;
        break;
    }
  }
  if (i != a.size()) {
    return Status::Corruption("delta did not consume entire base");
  }
  return out;
}

}  // namespace structura::storage
