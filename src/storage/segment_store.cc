#include "storage/segment_store.h"

#include <sys/stat.h>

#include <cstring>
#include <filesystem>

#include "common/hash.h"
#include "common/strings.h"

namespace structura::storage {
namespace {

// Record layout: [u32 payload_len][u64 fnv1a(payload)][payload bytes].
constexpr size_t kHeaderBytes = sizeof(uint32_t) + sizeof(uint64_t);

void EncodeHeader(uint32_t len, uint64_t checksum, char* out) {
  std::memcpy(out, &len, sizeof(len));
  std::memcpy(out + sizeof(len), &checksum, sizeof(checksum));
}

void DecodeHeader(const char* in, uint32_t* len, uint64_t* checksum) {
  std::memcpy(len, in, sizeof(*len));
  std::memcpy(checksum, in + sizeof(*len), sizeof(*checksum));
}

}  // namespace

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const std::string& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create store directory: " +
                            ec.message());
  }
  std::unique_ptr<SegmentStore> store(new SegmentStore(dir, options));
  STRUCTURA_RETURN_IF_ERROR(store->ScanExisting());
  if (store->num_segments_ == 0) {
    STRUCTURA_RETURN_IF_ERROR(store->RollSegment());
  } else {
    // Reopen the last segment for appending.
    uint32_t last = store->num_segments_ - 1;
    store->active_.open(store->SegmentPath(last),
                        std::ios::binary | std::ios::app);
    if (!store->active_) {
      return Status::Internal("cannot reopen active segment");
    }
    struct stat st {};
    if (::stat(store->SegmentPath(last).c_str(), &st) == 0) {
      store->active_bytes_ = static_cast<uint64_t>(st.st_size);
    }
  }
  return store;
}

std::string SegmentStore::SegmentPath(uint32_t segment) const {
  return StrFormat("%s/seg-%06u.log", dir_.c_str(), segment);
}

Status SegmentStore::RollSegment() {
  if (active_.is_open()) {
    active_.flush();
    active_.close();
  }
  uint32_t id = num_segments_++;
  active_.open(SegmentPath(id), std::ios::binary | std::ios::trunc);
  if (!active_) return Status::Internal("cannot create segment file");
  active_bytes_ = 0;
  return Status::OK();
}

Status SegmentStore::ScanExisting() {
  // Discover seg-*.log files in order; stop at the first gap.
  for (uint32_t seg = 0;; ++seg) {
    std::ifstream in(SegmentPath(seg), std::ios::binary);
    if (!in) break;
    num_segments_ = seg + 1;
    uint64_t offset = 0;
    char header[kHeaderBytes];
    while (in.read(header, kHeaderBytes)) {
      uint32_t len = 0;
      uint64_t checksum = 0;
      DecodeHeader(header, &len, &checksum);
      std::string payload(len, '\0');
      if (!in.read(payload.data(), len)) break;  // torn tail: drop
      if (Fnv1a64(payload) != checksum) break;   // corrupt tail: drop
      index_.push_back(RecordRef{seg, offset, len});
      offset += kHeaderBytes + len;
    }
  }
  return Status::OK();
}

Result<uint64_t> SegmentStore::Append(std::string_view record) {
  if (record.size() > (1u << 30)) {
    return Status::InvalidArgument("record too large");
  }
  if (active_bytes_ >= options_.segment_bytes) {
    STRUCTURA_RETURN_IF_ERROR(RollSegment());
  }
  char header[kHeaderBytes];
  EncodeHeader(static_cast<uint32_t>(record.size()), Fnv1a64(record),
               header);
  uint64_t offset = active_bytes_;
  active_.write(header, kHeaderBytes);
  active_.write(record.data(), static_cast<std::streamsize>(record.size()));
  if (!active_) return Status::Internal("segment write failed");
  active_bytes_ += kHeaderBytes + record.size();
  index_.push_back(RecordRef{num_segments_ - 1, offset,
                             static_cast<uint32_t>(record.size())});
  return index_.size() - 1;
}

Status SegmentStore::Flush() {
  if (active_.is_open()) active_.flush();
  return active_ ? Status::OK() : Status::Internal("flush failed");
}

Result<std::string> SegmentStore::ReadAt(const RecordRef& ref,
                                         std::ifstream* stream,
                                         int* open_segment) const {
  if (*open_segment != static_cast<int>(ref.segment)) {
    stream->close();
    stream->clear();
    stream->open(SegmentPath(ref.segment), std::ios::binary);
    if (!*stream) return Status::Internal("cannot open segment for read");
    *open_segment = static_cast<int>(ref.segment);
  }
  stream->clear();
  stream->seekg(static_cast<std::streamoff>(ref.offset));
  char header[kHeaderBytes];
  if (!stream->read(header, kHeaderBytes)) {
    return Status::Corruption("short read on record header");
  }
  uint32_t len = 0;
  uint64_t checksum = 0;
  DecodeHeader(header, &len, &checksum);
  if (len != ref.length) return Status::Corruption("index/file mismatch");
  std::string payload(len, '\0');
  if (!stream->read(payload.data(), len)) {
    return Status::Corruption("short read on record payload");
  }
  if (Fnv1a64(payload) != checksum) {
    return Status::Corruption("record checksum mismatch");
  }
  return payload;
}

Result<std::string> SegmentStore::Read(uint64_t index) const {
  if (index >= index_.size()) return Status::NotFound("record index");
  // Flush pending writes so reads observe them.
  const_cast<SegmentStore*>(this)->Flush();
  std::ifstream stream;
  int open_segment = -1;
  return ReadAt(index_[index], &stream, &open_segment);
}

SegmentStore::Iterator::Iterator(const SegmentStore* store)
    : store_(store) {
  const_cast<SegmentStore*>(store_)->Flush();
  Load();
}

void SegmentStore::Iterator::Load() {
  if (index_ >= store_->NumRecords()) return;
  Result<std::string> r =
      store_->ReadAt(store_->index_[index_], &stream_, &open_segment_);
  if (!r.ok()) {
    ok_ = false;
    status_ = r.status();
    return;
  }
  current_ = std::move(*r);
}

void SegmentStore::Iterator::Next() {
  ++index_;
  Load();
}

}  // namespace structura::storage
