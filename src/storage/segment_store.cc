#include "storage/segment_store.h"

#include <sys/stat.h>

#include <cstring>
#include <filesystem>
#include <iterator>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/recordio.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace structura::storage {
namespace {

struct StoreMetrics {
  obs::Counter* appends;
  obs::Counter* reads;
  obs::Counter* read_errors;
  obs::Counter* segments_rolled;
  obs::Counter* scrubs;
  obs::Histogram* append_ns;
  obs::Histogram* read_ns;
};
StoreMetrics& Metrics() {
  static StoreMetrics m = [] {
    obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
    return StoreMetrics{
        r.GetCounter("storage.segment.appends"),
        r.GetCounter("storage.segment.reads"),
        r.GetCounter("storage.segment.read_errors"),
        r.GetCounter("storage.segment.segments_rolled"),
        r.GetCounter("storage.segment.scrubs"),
        r.GetHistogram("storage.segment.append_ns"),
        r.GetHistogram("storage.segment.read_ns"),
    };
  }();
  return m;
}

/// Reads one whole segment file; missing file -> nullopt.
std::optional<std::string> ReadSegmentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

Result<std::unique_ptr<SegmentStore>> SegmentStore::Open(
    const std::string& dir, Options options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create store directory: " +
                            ec.message());
  }
  std::unique_ptr<SegmentStore> store(new SegmentStore(dir, options));
  STRUCTURA_RETURN_IF_ERROR(store->ScanExisting());
  if (store->num_segments_ == 0) {
    STRUCTURA_RETURN_IF_ERROR(store->RollSegment());
  } else {
    // Reopen the last segment for appending.
    uint32_t last = store->num_segments_ - 1;
    STRUCTURA_ASSIGN_OR_RETURN(
        store->active_, store->env()->NewWritableFile(
                            store->SegmentPath(last), /*truncate=*/false));
    struct stat st {};
    if (::stat(store->SegmentPath(last).c_str(), &st) == 0) {
      store->active_bytes_ = static_cast<uint64_t>(st.st_size);
    }
  }
  return store;
}

std::string SegmentStore::SegmentPath(uint32_t segment) const {
  return StrFormat("%s/seg-%06u.log", dir_.c_str(), segment);
}

Status SegmentStore::RollSegment() {
  Metrics().segments_rolled->Increment();
  if (active_ != nullptr) {
    // Durable seal: the finished segment must survive a crash before
    // any record is acknowledged in its successor.
    STRUCTURA_RETURN_IF_ERROR(active_->Sync());
    STRUCTURA_RETURN_IF_ERROR(active_->Close());
    active_.reset();
  }
  // num_segments_ advances only after the new file exists, so a failed
  // create retries the same segment id instead of leaving a numbering
  // gap that would hide later segments from ScanExisting.
  uint32_t id = num_segments_;
  STRUCTURA_ASSIGN_OR_RETURN(
      active_, env()->NewWritableFile(SegmentPath(id), /*truncate=*/true));
  STRUCTURA_RETURN_IF_ERROR(env()->SyncDir(dir_));
  num_segments_ = id + 1;
  active_bytes_ = 0;
  return Status::OK();
}

Status SegmentStore::ReopenActive() {
  // The failed handle is dropped, never retried: its acknowledged
  // records are intact on disk and stay readable through the index;
  // any torn bytes past them were never indexed.
  active_.reset();
  return RollSegment();
}

Status SegmentStore::ScanExisting() {
  recovery_ = IntegrityCounters{};
  // Discover seg-*.log files in order; stop at the first gap.
  for (uint32_t seg = 0;; ++seg) {
    std::optional<std::string> data = ReadSegmentFile(SegmentPath(seg));
    if (!data.has_value()) break;
    num_segments_ = seg + 1;
    FrameReader reader(*data);
    while (std::optional<FrameReader::Frame> frame = reader.Next()) {
      index_.push_back(RecordRef{
          seg, frame->offset, static_cast<uint32_t>(frame->payload.size())});
    }
    const FrameScanReport& report = reader.report();
    recovery_.records_verified += report.frames_valid;
    recovery_.corrupt_records += report.damaged_regions;
    recovery_.salvaged_records += report.frames_salvaged;
    if (report.damaged_regions > 0) {
      // Mid-file damage: the segment stays readable for its surviving
      // records but is flagged so operators can rebuild or retire it.
      ++recovery_.quarantined_segments;
      for (const auto& [begin, end] : report.lost_ranges) {
        STRUCTURA_LOG(kWarning)
            << "segment " << SegmentPath(seg)
            << ": lost byte range [" << begin << ", " << end
            << "); salvaged later records";
      }
    }
    if (report.torn_tail) {
      recovery_.torn_tail_bytes += report.torn_tail_bytes;
      // Truncate the torn tail so future appends start at the last
      // valid frame instead of burying garbage mid-file.
      std::error_code ec;
      std::filesystem::resize_file(SegmentPath(seg),
                                   report.torn_tail_offset, ec);
      if (ec) {
        return Status::Internal("cannot truncate torn segment tail: " +
                                ec.message());
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> SegmentStore::Append(std::string_view record) {
  TRACE_SPAN("storage.segment.append");
  StoreMetrics& sm = Metrics();
  sm.appends->Increment();
  obs::ScopedLatency latency(sm.append_ns);
  if (record.size() > (1u << 30)) {
    return Status::InvalidArgument("record too large");
  }
  if (active_ == nullptr) {
    return Status::IoError("segment store has no active segment: " + dir_);
  }
  if (active_->failed()) return active_->sticky_status();
  if (active_bytes_ >= options_.segment_bytes) {
    STRUCTURA_RETURN_IF_ERROR(RollSegment());
  }
  std::string frame = FrameRecord(record);
  // Deterministic bit-rot injection over the framed bytes; the write
  // below still "succeeds" and the damage surfaces at Read/Scrub time.
  STRUCTURA_RETURN_IF_ERROR(MaybeCorrupt("segment.record", &frame));
  uint64_t offset = active_bytes_;
  STRUCTURA_RETURN_IF_ERROR(active_->Append(frame));
  active_bytes_ += frame.size();
  index_.push_back(RecordRef{num_segments_ - 1, offset,
                             static_cast<uint32_t>(record.size())});
  return index_.size() - 1;
}

Status SegmentStore::Flush() {
  if (active_ == nullptr || active_->failed()) {
    // Nothing to push: writes are unbuffered, and a failed handle's
    // durable prefix is already visible to readers.
    return Status::OK();
  }
  return active_->Flush();
}

Status SegmentStore::Sync() {
  if (active_ == nullptr) {
    return Status::IoError("segment store has no active segment: " + dir_);
  }
  return active_->Sync();
}

Result<std::string> SegmentStore::ReadAt(const RecordRef& ref,
                                         std::ifstream* stream,
                                         int* open_segment) const {
  if (*open_segment != static_cast<int>(ref.segment)) {
    stream->close();
    stream->clear();
    stream->open(SegmentPath(ref.segment), std::ios::binary);
    if (!*stream) return Status::Internal("cannot open segment for read");
    *open_segment = static_cast<int>(ref.segment);
  }
  stream->clear();
  stream->seekg(static_cast<std::streamoff>(ref.offset));
  char header[kFrameHeaderBytes];
  if (!stream->read(header, kFrameHeaderBytes)) {
    return Status::Corruption("short read on record header");
  }
  if (std::memcmp(header, kFrameMagic, kFrameMagicBytes) != 0) {
    return Status::Corruption("bad record magic");
  }
  uint32_t stored_header_crc = 0;
  std::memcpy(&stored_header_crc, header + kFrameMagicBytes + 8,
              sizeof(stored_header_crc));
  if (Crc32c(std::string_view(header, kFrameMagicBytes + 8)) !=
      stored_header_crc) {
    return Status::Corruption("record header checksum mismatch");
  }
  uint32_t len = 0;
  uint32_t payload_crc = 0;
  std::memcpy(&len, header + kFrameMagicBytes, sizeof(len));
  std::memcpy(&payload_crc, header + kFrameMagicBytes + 4,
              sizeof(payload_crc));
  if (len != ref.length) return Status::Corruption("index/file mismatch");
  std::string payload(len, '\0');
  if (!stream->read(payload.data(), len)) {
    return Status::Corruption("short read on record payload");
  }
  if (Crc32c(payload) != payload_crc) {
    return Status::Corruption("record checksum mismatch");
  }
  obs::ChargeCost(obs::CostDim::kSegmentBytesRead,
                  kFrameHeaderBytes + payload.size());
  return payload;
}

Result<std::string> SegmentStore::Read(uint64_t index) const {
  TRACE_SPAN("storage.segment.read");
  StoreMetrics& sm = Metrics();
  sm.reads->Increment();
  obs::ScopedLatency latency(sm.read_ns);
  if (index >= index_.size()) return Status::NotFound("record index");
  // Flush pending writes so reads observe them.
  const_cast<SegmentStore*>(this)->Flush();
  std::ifstream stream;
  int open_segment = -1;
  Result<std::string> r = ReadAt(index_[index], &stream, &open_segment);
  if (!r.ok()) sm.read_errors->Increment();
  return r;
}

Status SegmentStore::Scrub(IntegrityCounters* counters) {
  TRACE_SPAN("storage.segment.scrub");
  Metrics().scrubs->Increment();
  STRUCTURA_RETURN_IF_ERROR(Flush());
  for (uint32_t seg = 0; seg < num_segments_; ++seg) {
    std::optional<std::string> data = ReadSegmentFile(SegmentPath(seg));
    if (!data.has_value()) {
      return Status::Internal("cannot open segment for scrub: " +
                              SegmentPath(seg));
    }
    FrameReader reader(*data);
    while (reader.Next().has_value()) {
    }
    const FrameScanReport& report = reader.report();
    counters->records_verified += report.frames_valid;
    counters->corrupt_records +=
        report.damaged_regions + (report.torn_tail ? 1 : 0);
    counters->salvaged_records += report.frames_salvaged;
    counters->torn_tail_bytes += report.torn_tail_bytes;
    if (report.damaged_regions > 0 ||
        (report.torn_tail && seg + 1 < num_segments_)) {
      ++counters->quarantined_segments;
    }
  }
  return Status::OK();
}

SegmentStore::Iterator::Iterator(const SegmentStore* store)
    : store_(store) {
  const_cast<SegmentStore*>(store_)->Flush();
  Load();
}

void SegmentStore::Iterator::Load() {
  if (index_ >= store_->NumRecords()) return;
  Result<std::string> r =
      store_->ReadAt(store_->index_[index_], &stream_, &open_segment_);
  if (!r.ok()) {
    ok_ = false;
    status_ = r.status();
    return;
  }
  current_ = std::move(*r);
}

void SegmentStore::Iterator::Next() {
  ++index_;
  Load();
}

}  // namespace structura::storage
