#ifndef STRUCTURA_STORAGE_SNAPSHOT_STORE_H_
#define STRUCTURA_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/integrity.h"
#include "common/status.h"
#include "storage/diff.h"

namespace structura::storage {

/// Version-store for re-crawled documents, in the spirit of the paper's
/// "store daily snapshots in a device such as Subversion, which only
/// stores the diff across snapshots" (Section 4). Version 0 of a page is
/// stored in full; each later version is a line delta against its
/// predecessor. Reads reconstruct by replaying deltas, with periodic full
/// "keyframes" bounding reconstruction cost.
class SnapshotStore {
 public:
  struct Options {
    /// Store a full copy every `keyframe_interval` versions so Get cost
    /// stays bounded (like SVN skip-deltas, simplified).
    uint32_t keyframe_interval = 16;
  };

  SnapshotStore() : SnapshotStore(Options{}) {}
  explicit SnapshotStore(Options options) : options_(options) {}

  /// Attaches a durable journal at `dir`/snapshots.journal (the
  /// directory is created if needed). Any existing journal is replayed
  /// into memory first — a torn tail from a crash is truncated away,
  /// and entries past mid-file damage are dropped (reported in
  /// recovery_report()) so version numbering stays consistent with
  /// what was acknowledged. Every subsequent Append is journaled
  /// (page id + full content, CRC-framed) before it mutates memory;
  /// Sync() is the durability point. nullptr env = Env::Default().
  /// Call once, before any Append.
  Status AttachJournal(const std::string& dir, Env* env = nullptr);

  /// Durability point for journaled appends (no-op when detached).
  Status Sync();

  /// True once a journal write/sync failed: appends are being refused
  /// with the sticky error — reads keep serving. ReopenJournal() heals.
  bool Failed() const {
    return attached_ && (journal_ == nullptr || journal_->failed());
  }

  /// Heals a failed journal by atomically rewriting it from the
  /// in-memory state (every page, every version) and opening a fresh
  /// handle. A version whose delta chain no longer reconstructs (bit
  /// rot) is rewritten — on disk and in memory — from its newest clean
  /// ancestor (GetWithFallback semantics, a full copy of the last-good
  /// content), so one corrupt version cannot wedge the heal; a page
  /// with no clean version at all is truncated at the damage (memory
  /// and journal together, keeping version numbering aligned). Both
  /// cases are logged and counted
  /// (`storage.snapshot.heal_{degraded,dropped}_versions`).
  Status ReopenJournal();

  /// What AttachJournal's replay found (zeros for a clean journal).
  const IntegrityCounters& recovery_report() const { return recovery_; }

  /// Appends `content` as the next version of `page_id`. Versions must be
  /// added in order starting at 0. When a journal is attached the entry
  /// is journaled first; a failed journal refuses the append (sticky).
  Result<uint32_t> Append(uint64_t page_id, const std::string& content);

  /// Reconstructs a specific version. The result is verified against the
  /// CRC32C recorded at Append time, so a damaged delta chain yields
  /// kCorruption instead of silently wrong text.
  Result<std::string> Get(uint64_t page_id, uint32_t version) const;

  /// A Get() that survived corruption by falling back. `degraded` is
  /// the contract: when true, `content` is NOT the requested version
  /// but the newest *older* version that still verifies, `version` says
  /// which one, and `reason` says why — last-good data clearly labeled
  /// beats an error for read paths that can tolerate staleness.
  struct ReadResult {
    std::string content;
    uint32_t version = 0;
    bool degraded = false;
    std::string reason;
  };

  /// Like Get(), but when the requested version fails its checksum the
  /// read walks back toward version 0 and serves the newest older
  /// version that still reconstructs cleanly, marked degraded (counter
  /// `storage.snapshot.fallback_reads`). Unknown page/version is still
  /// kNotFound; a page with no clean version at all is kCorruption —
  /// the store never fabricates content.
  Result<ReadResult> GetWithFallback(uint64_t page_id,
                                     uint32_t version) const;

  /// Reconstructs and re-verifies every stored version, folding findings
  /// into `counters` (records_verified / corrupt_records).
  Status Scrub(IntegrityCounters* counters) const;

  /// Latest version number for a page, or error when unknown.
  Result<uint32_t> LatestVersion(uint64_t page_id) const;

  /// Bytes this store holds (full texts + serialized deltas). Compare
  /// against `FullCopyBytes` to measure the diff-storage saving.
  size_t StoredBytes() const { return stored_bytes_; }

  /// Bytes a naive store-every-version-in-full design would hold.
  size_t FullCopyBytes() const { return full_copy_bytes_; }

  size_t NumPages() const { return pages_.size(); }

 private:
  struct VersionEntry {
    bool is_full = false;
    std::string full;       // when is_full
    std::string delta;      // serialized Delta, when !is_full
    uint32_t content_crc = 0;  // CRC32C of the reconstructed content
  };
  struct Page {
    std::vector<VersionEntry> versions;
  };

  /// Replays one journal payload ("<page_id> <content>") into memory.
  Status ApplyJournalEntry(std::string_view payload);

  Options options_;
  std::unordered_map<uint64_t, Page> pages_;
  size_t stored_bytes_ = 0;
  size_t full_copy_bytes_ = 0;

  /// Durable journal state (inert until AttachJournal).
  bool attached_ = false;
  Env* env_ = nullptr;
  std::string journal_path_;
  std::unique_ptr<WritableFile> journal_;
  IntegrityCounters recovery_;
};

}  // namespace structura::storage

#endif  // STRUCTURA_STORAGE_SNAPSHOT_STORE_H_
