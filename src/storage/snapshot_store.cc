#include "storage/snapshot_store.h"

#include <filesystem>
#include <fstream>
#include <iterator>

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/recordio.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace structura::storage {
namespace {

/// Journal payload: "<page_id> <content>"; content may hold any bytes.
std::string EncodeJournalEntry(uint64_t page_id,
                               const std::string& content) {
  std::string out =
      StrFormat("%llu ", static_cast<unsigned long long>(page_id));
  out += content;
  return out;
}

}  // namespace

Status SnapshotStore::ApplyJournalEntry(std::string_view payload) {
  size_t space = payload.find(' ');
  if (space == std::string_view::npos) {
    return Status::Corruption("bad snapshot journal entry");
  }
  int64_t page_id = 0;
  if (!ParseInt64(std::string(payload.substr(0, space)), &page_id) ||
      page_id < 0) {
    return Status::Corruption("bad snapshot journal page id");
  }
  std::string content(payload.substr(space + 1));
  Result<uint32_t> applied =
      Append(static_cast<uint64_t>(page_id), content);
  return applied.ok() ? Status::OK() : applied.status();
}

Status SnapshotStore::AttachJournal(const std::string& dir, Env* env) {
  if (attached_) {
    return Status::FailedPrecondition("journal already attached");
  }
  env_ = env != nullptr ? env : Env::Default();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create snapshot dir: " + ec.message());
  }
  journal_path_ = dir + "/snapshots.journal";
  recovery_ = IntegrityCounters{};
  // Replay whatever survived. Version numbers are implicit in entry
  // order, so entries AFTER the first damaged region are dropped —
  // applying them would renumber versions relative to what was
  // acknowledged before the crash. Recovery must not trip armed
  // failpoints meant for foreground traffic.
  uint64_t keep_end = 0;
  {
    std::ifstream in(journal_path_, std::ios::binary);
    if (in) {
      std::string data((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      ScopedFailpointSuppression shield;
      FrameReader reader(data);
      while (std::optional<FrameReader::Frame> frame = reader.Next()) {
        if (frame->after_damage) break;
        Status applied = ApplyJournalEntry(frame->payload);
        if (!applied.ok()) {
          ++recovery_.corrupt_records;
          break;
        }
        ++recovery_.records_verified;
        keep_end = frame->offset + kFrameHeaderBytes + frame->payload.size();
      }
      const FrameScanReport& report = reader.report();
      if (report.damaged_regions > 0) {
        recovery_.corrupt_records += report.damaged_regions;
        STRUCTURA_LOG(kWarning)
            << "snapshot journal " << journal_path_
            << ": dropping entries past first damaged region (offset "
            << report.first_damage_offset << ")";
      }
      recovery_.torn_tail_bytes += report.torn_tail_bytes;
      if (data.size() > keep_end) {
        // Truncate damage and torn tails so future appends extend a
        // fully-valid prefix.
        std::filesystem::resize_file(journal_path_, keep_end, ec);
        if (ec) {
          return Status::Internal("cannot truncate snapshot journal: " +
                                  ec.message());
        }
      }
    }
  }
  STRUCTURA_ASSIGN_OR_RETURN(
      journal_, env_->NewWritableFile(journal_path_, /*truncate=*/false));
  // A first-attach creates the journal file; until its parent
  // directory is fsynced that is only a buffered directory entry, and
  // a crash could drop the whole file even with every entry synced.
  STRUCTURA_RETURN_IF_ERROR(env_->SyncDir(dir));
  attached_ = true;
  return Status::OK();
}

Status SnapshotStore::Sync() {
  if (!attached_) return Status::OK();
  if (journal_ == nullptr) {
    return Status::IoError("snapshot journal unavailable: " + journal_path_);
  }
  return journal_->Sync();
}

Status SnapshotStore::ReopenJournal() {
  if (!attached_) {
    return Status::FailedPrecondition("no snapshot journal attached");
  }
  // Rebuild the full journal from memory. Bit-rot may have made some
  // versions unreconstructable — a heal runs in exactly that state —
  // so a damaged version is rewritten from the newest older version
  // that still verifies (the same last-good contract GetWithFallback
  // gives readers) instead of failing the whole rewrite, which would
  // wedge every heal attempt and leave the system read-only even after
  // the disk recovers. A version with no clean ancestor at all
  // truncates its page there, in memory and journal together, so the
  // implicit order-is-version numbering stays aligned across restarts.
  // Everything degraded or dropped is counted and logged.
  journal_.reset();
  static obs::Counter* degraded_rewrites =
      obs::MetricsRegistry::Default().GetCounter(
          "storage.snapshot.heal_degraded_versions");
  static obs::Counter* dropped_versions =
      obs::MetricsRegistry::Default().GetCounter(
          "storage.snapshot.heal_dropped_versions");
  std::string image;
  for (auto& [page_id, page] : pages_) {
    for (uint32_t v = 0; v < page.versions.size(); ++v) {
      Result<ReadResult> content = GetWithFallback(page_id, v);
      if (!content.ok()) {
        size_t drop = page.versions.size() - v;
        dropped_versions->Add(drop);
        STRUCTURA_LOG(kWarning)
            << "snapshot heal: page " << page_id
            << " has no clean version at or below " << v << "; dropping "
            << drop << " version(s): " << content.status().ToString();
        for (uint32_t d = v; d < page.versions.size(); ++d) {
          const VersionEntry& e = page.versions[d];
          stored_bytes_ -=
              e.is_full ? e.full.size() : e.delta.size();
        }
        page.versions.resize(v);
        break;
      }
      if (content->degraded) {
        degraded_rewrites->Increment();
        STRUCTURA_LOG(kWarning)
            << "snapshot heal: page " << page_id << " version " << v
            << " rewritten degraded (" << content->reason << ")";
        // Repair memory to match the rewritten journal: replace the
        // unreconstructable entry with a full copy of the last-good
        // content — exactly what a restart replaying the new journal
        // would yield — so later versions of the page re-verify and
        // appends flow again instead of tripping over the dead delta.
        VersionEntry& ve = page.versions[v];
        stored_bytes_ -= ve.is_full ? ve.full.size() : ve.delta.size();
        ve.is_full = true;
        ve.full = content->content;
        ve.delta.clear();
        ve.content_crc = Crc32c(ve.full);
        stored_bytes_ += ve.full.size();
      }
      AppendFrame(EncodeJournalEntry(page_id, content->content), &image);
    }
  }
  for (auto it = pages_.begin(); it != pages_.end();) {
    it = it->second.versions.empty() ? pages_.erase(it) : std::next(it);
  }
  STRUCTURA_RETURN_IF_ERROR(AtomicReplaceFile(env_, journal_path_, image));
  STRUCTURA_ASSIGN_OR_RETURN(
      journal_, env_->NewWritableFile(journal_path_, /*truncate=*/false));
  return Status::OK();
}

Result<uint32_t> SnapshotStore::Append(uint64_t page_id,
                                       const std::string& content) {
  STRUCTURA_FAILPOINT("snapshot.append");
  // Stage the whole version entry BEFORE journaling: the delta build
  // can fail (a corrupt predecessor refuses to reconstruct), and an
  // entry that reached the journal but never reached memory would
  // shift every later acknowledged version of the page by one on
  // replay — an acked version N reading back as different content.
  // Once the entry is staged, the in-memory append cannot fail, so
  // journal order stays identical to acknowledged version order.
  auto it = pages_.find(page_id);
  uint32_t version =
      it == pages_.end() ? 0
                         : static_cast<uint32_t>(it->second.versions.size());

  VersionEntry entry;
  entry.content_crc = Crc32c(content);
  bool keyframe = options_.keyframe_interval > 0 &&
                  version % options_.keyframe_interval == 0;
  if (version == 0 || keyframe) {
    entry.is_full = true;
    entry.full = content;
  } else {
    // Reconstruct the previous version to diff against. Appends are
    // sequential, so this walks at most keyframe_interval deltas.
    Result<std::string> prev = Get(page_id, version - 1);
    if (!prev.ok()) return prev.status();
    Delta delta = ComputeDelta(*prev, content);
    entry.is_full = false;
    entry.delta = delta.Serialize();
    // A pathological edit can make the delta bigger than the content;
    // store full in that case (standard delta-store practice).
    if (entry.delta.size() >= content.size()) {
      entry.is_full = true;
      entry.full = content;
      entry.delta.clear();
    }
  }
  // Deterministic bit-rot injection over whichever representation was
  // stored; the checksum above was taken first, so Get() detects it.
  // The journal below carries the pristine content either way.
  std::string* stored = entry.is_full ? &entry.full : &entry.delta;
  STRUCTURA_RETURN_IF_ERROR(MaybeCorrupt("snapshot.delta", stored));

  if (attached_) {
    // Journal before memory: an entry that fails to reach the OS is
    // refused outright (sticky), never acknowledged-then-lost.
    if (journal_ == nullptr) {
      return Status::IoError("snapshot journal unavailable: " +
                             journal_path_);
    }
    if (journal_->failed()) return journal_->sticky_status();
    STRUCTURA_RETURN_IF_ERROR(
        journal_->Append(FrameRecord(EncodeJournalEntry(page_id, content))));
  }

  full_copy_bytes_ += content.size();
  stored_bytes_ += entry.is_full ? entry.full.size() : entry.delta.size();
  pages_[page_id].versions.push_back(std::move(entry));
  return version;
}

Result<std::string> SnapshotStore::Get(uint64_t page_id,
                                       uint32_t version) const {
  auto it = pages_.find(page_id);
  if (it == pages_.end()) {
    return Status::NotFound("unknown page id");
  }
  const Page& page = it->second;
  if (version >= page.versions.size()) {
    return Status::NotFound("unknown version");
  }
  // Find the nearest full entry at or before `version`.
  uint32_t base = version;
  while (!page.versions[base].is_full) {
    if (base == 0) return Status::Corruption("version 0 is not full");
    --base;
  }
  std::string text = page.versions[base].full;
  for (uint32_t v = base + 1; v <= version; ++v) {
    Result<Delta> delta = Delta::Deserialize(page.versions[v].delta);
    if (!delta.ok()) return delta.status();
    Result<std::string> next = ApplyDelta(text, *delta);
    if (!next.ok()) return next.status();
    text = std::move(*next);
  }
  if (Crc32c(text) != page.versions[version].content_crc) {
    return Status::Corruption("snapshot reconstruction mismatch");
  }
  return text;
}

Result<SnapshotStore::ReadResult> SnapshotStore::GetWithFallback(
    uint64_t page_id, uint32_t version) const {
  Result<std::string> primary = Get(page_id, version);
  if (primary.ok()) {
    ReadResult r;
    r.content = std::move(primary).value();
    r.version = version;
    return r;
  }
  if (primary.status().code() == StatusCode::kNotFound) {
    return primary.status();
  }
  static obs::Counter* fallback_reads =
      obs::MetricsRegistry::Default().GetCounter(
          "storage.snapshot.fallback_reads");
  // The requested version is damaged: serve the newest older version
  // that still verifies, clearly labeled as stale.
  for (uint32_t v = version; v-- > 0;) {
    Result<std::string> older = Get(page_id, v);
    if (!older.ok()) continue;
    fallback_reads->Increment();
    ReadResult r;
    r.content = std::move(older).value();
    r.version = v;
    r.degraded = true;
    r.reason = "version " + std::to_string(version) +
               " corrupt; served last-good version " + std::to_string(v);
    return r;
  }
  return Status::Corruption("no clean version of page available: " +
                            primary.status().message());
}

Status SnapshotStore::Scrub(IntegrityCounters* counters) const {
  for (const auto& [page_id, page] : pages_) {
    for (uint32_t v = 0; v < page.versions.size(); ++v) {
      if (Get(page_id, v).ok()) {
        ++counters->records_verified;
      } else {
        ++counters->corrupt_records;
      }
    }
  }
  return Status::OK();
}

Result<uint32_t> SnapshotStore::LatestVersion(uint64_t page_id) const {
  auto it = pages_.find(page_id);
  if (it == pages_.end() || it->second.versions.empty()) {
    return Status::NotFound("unknown page id");
  }
  return static_cast<uint32_t>(it->second.versions.size() - 1);
}

}  // namespace structura::storage
