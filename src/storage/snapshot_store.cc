#include "storage/snapshot_store.h"

#include "common/crc32c.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace structura::storage {

Result<uint32_t> SnapshotStore::Append(uint64_t page_id,
                                       const std::string& content) {
  STRUCTURA_FAILPOINT("snapshot.append");
  Page& page = pages_[page_id];
  uint32_t version = static_cast<uint32_t>(page.versions.size());
  full_copy_bytes_ += content.size();

  VersionEntry entry;
  entry.content_crc = Crc32c(content);
  bool keyframe = options_.keyframe_interval > 0 &&
                  version % options_.keyframe_interval == 0;
  if (version == 0 || keyframe) {
    entry.is_full = true;
    entry.full = content;
    stored_bytes_ += entry.full.size();
  } else {
    // Reconstruct the previous version to diff against. Appends are
    // sequential, so this walks at most keyframe_interval deltas.
    Result<std::string> prev = Get(page_id, version - 1);
    if (!prev.ok()) return prev.status();
    Delta delta = ComputeDelta(*prev, content);
    entry.is_full = false;
    entry.delta = delta.Serialize();
    // A pathological edit can make the delta bigger than the content;
    // store full in that case (standard delta-store practice).
    if (entry.delta.size() >= content.size()) {
      entry.is_full = true;
      entry.full = content;
      entry.delta.clear();
      stored_bytes_ += entry.full.size();
    } else {
      stored_bytes_ += entry.delta.size();
    }
  }
  // Deterministic bit-rot injection over whichever representation was
  // stored; the checksum above was taken first, so Get() detects it.
  std::string* stored = entry.is_full ? &entry.full : &entry.delta;
  STRUCTURA_RETURN_IF_ERROR(MaybeCorrupt("snapshot.delta", stored));
  page.versions.push_back(std::move(entry));
  return version;
}

Result<std::string> SnapshotStore::Get(uint64_t page_id,
                                       uint32_t version) const {
  auto it = pages_.find(page_id);
  if (it == pages_.end()) {
    return Status::NotFound("unknown page id");
  }
  const Page& page = it->second;
  if (version >= page.versions.size()) {
    return Status::NotFound("unknown version");
  }
  // Find the nearest full entry at or before `version`.
  uint32_t base = version;
  while (!page.versions[base].is_full) {
    if (base == 0) return Status::Corruption("version 0 is not full");
    --base;
  }
  std::string text = page.versions[base].full;
  for (uint32_t v = base + 1; v <= version; ++v) {
    Result<Delta> delta = Delta::Deserialize(page.versions[v].delta);
    if (!delta.ok()) return delta.status();
    Result<std::string> next = ApplyDelta(text, *delta);
    if (!next.ok()) return next.status();
    text = std::move(*next);
  }
  if (Crc32c(text) != page.versions[version].content_crc) {
    return Status::Corruption("snapshot reconstruction mismatch");
  }
  return text;
}

Result<SnapshotStore::ReadResult> SnapshotStore::GetWithFallback(
    uint64_t page_id, uint32_t version) const {
  Result<std::string> primary = Get(page_id, version);
  if (primary.ok()) {
    ReadResult r;
    r.content = std::move(primary).value();
    r.version = version;
    return r;
  }
  if (primary.status().code() == StatusCode::kNotFound) {
    return primary.status();
  }
  static obs::Counter* fallback_reads =
      obs::MetricsRegistry::Default().GetCounter(
          "storage.snapshot.fallback_reads");
  // The requested version is damaged: serve the newest older version
  // that still verifies, clearly labeled as stale.
  for (uint32_t v = version; v-- > 0;) {
    Result<std::string> older = Get(page_id, v);
    if (!older.ok()) continue;
    fallback_reads->Increment();
    ReadResult r;
    r.content = std::move(older).value();
    r.version = v;
    r.degraded = true;
    r.reason = "version " + std::to_string(version) +
               " corrupt; served last-good version " + std::to_string(v);
    return r;
  }
  return Status::Corruption("no clean version of page available: " +
                            primary.status().message());
}

Status SnapshotStore::Scrub(IntegrityCounters* counters) const {
  for (const auto& [page_id, page] : pages_) {
    for (uint32_t v = 0; v < page.versions.size(); ++v) {
      if (Get(page_id, v).ok()) {
        ++counters->records_verified;
      } else {
        ++counters->corrupt_records;
      }
    }
  }
  return Status::OK();
}

Result<uint32_t> SnapshotStore::LatestVersion(uint64_t page_id) const {
  auto it = pages_.find(page_id);
  if (it == pages_.end() || it->second.versions.empty()) {
    return Status::NotFound("unknown page id");
  }
  return static_cast<uint32_t>(it->second.versions.size() - 1);
}

}  // namespace structura::storage
