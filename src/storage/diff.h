#ifndef STRUCTURA_STORAGE_DIFF_H_
#define STRUCTURA_STORAGE_DIFF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace structura::storage {

/// One edit-script operation over lines of the base text.
struct DiffOp {
  enum class Kind : uint8_t {
    kCopy,    // copy `count` lines from the base
    kSkip,    // skip `count` base lines (deletion)
    kInsert,  // insert `lines`
  };
  Kind kind = Kind::kCopy;
  uint32_t count = 0;
  std::vector<std::string> lines;  // only for kInsert
};

/// A line-based delta from `base` to `target`.
struct Delta {
  std::vector<DiffOp> ops;

  /// Bytes this delta occupies when serialized — the quantity the
  /// snapshot-store space experiment (E6) accounts.
  size_t SerializedSize() const;

  std::string Serialize() const;
  static Result<Delta> Deserialize(const std::string& data);
};

/// Computes a line-based delta using LCS when the inputs are small enough,
/// falling back to common prefix/suffix trimming for very large inputs.
Delta ComputeDelta(const std::string& base, const std::string& target);

/// Applies `delta` to `base`; fails with kCorruption when the script does
/// not fit the base (wrong base version).
Result<std::string> ApplyDelta(const std::string& base, const Delta& delta);

}  // namespace structura::storage

#endif  // STRUCTURA_STORAGE_DIFF_H_
