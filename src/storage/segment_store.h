#ifndef STRUCTURA_STORAGE_SEGMENT_STORE_H_
#define STRUCTURA_STORAGE_SEGMENT_STORE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/integrity.h"
#include "common/status.h"

namespace structura::storage {

/// Append-only, file-backed record log split into segments — the paper's
/// storage device for intermediate structured data, which "often executes
/// only sequential reads and writes" (Section 4). Records are framed with
/// a magic resync marker plus header and payload CRC32C (common/
/// recordio.h); Open() re-scans segments validating every record, so a
/// torn tail from a crash is truncated away while mid-file bit-rot loses
/// only the damaged records — later valid records are salvaged and the
/// affected segment is reported as quarantined in recovery_report().
class SegmentStore {
 public:
  struct Options {
    size_t segment_bytes = 1 << 20;  // roll to a new file past this size
    /// I/O environment; nullptr = Env::Default().
    Env* env = nullptr;
  };

  /// Opens (or creates) a store rooted at directory `dir`.
  static Result<std::unique_ptr<SegmentStore>> Open(const std::string& dir,
                                                    Options options);
  static Result<std::unique_ptr<SegmentStore>> Open(
      const std::string& dir) {
    return Open(dir, Options());
  }

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Appends one record; returns its record number (dense, 0-based).
  Result<uint64_t> Append(std::string_view record);

  /// Random read of record `index`.
  Result<std::string> Read(uint64_t index) const;

  /// Pushes buffered writes to the OS. NOT a durability point, and a
  /// no-op for a failed handle (its durable prefix is already visible).
  Status Flush();

  /// Durability point: fsyncs the active segment. Sealed segments were
  /// already synced when they were rolled.
  Status Sync();

  /// True once a write or sync on the active segment failed: appends
  /// are being refused with the original (sticky) error — reads keep
  /// serving every indexed record. ReopenActive() heals.
  bool Failed() const {
    return active_ == nullptr || active_->failed();
  }

  /// Heals a failed store by rolling to a fresh segment file. The
  /// failed segment's acknowledged records stay readable (its torn
  /// tail, if any, was never indexed and is truncated at next Open).
  Status ReopenActive();

  /// Sequential scan from record 0. Usage:
  ///   for (auto it = store.Scan(); it.Valid(); it.Next()) use(it.record());
  class Iterator {
   public:
    bool Valid() const { return index_ < store_->NumRecords() && ok_; }
    void Next();
    const std::string& record() const { return current_; }
    uint64_t index() const { return index_; }
    const Status& status() const { return status_; }

   private:
    friend class SegmentStore;
    explicit Iterator(const SegmentStore* store);
    void Load();

    const SegmentStore* store_;
    uint64_t index_ = 0;
    std::string current_;
    bool ok_ = true;
    Status status_;
    // Reused stream for sequential access (segment id it points into).
    mutable std::ifstream stream_;
    mutable int open_segment_ = -1;
  };

  Iterator Scan() const { return Iterator(this); }

  /// Re-reads and re-validates every byte of every segment file without
  /// modifying anything, folding findings into `counters`: records
  /// verified, damaged regions, salvaged records, quarantined segments.
  Status Scrub(IntegrityCounters* counters);

  /// What the last Open() scan found (all zeros for a clean open).
  const IntegrityCounters& recovery_report() const { return recovery_; }

  uint64_t NumRecords() const { return index_.size(); }
  size_t NumSegments() const { return num_segments_; }

 private:
  struct RecordRef {
    uint32_t segment = 0;
    uint64_t offset = 0;  // byte offset of the record header
    uint32_t length = 0;  // payload length
  };

  SegmentStore(std::string dir, Options options)
      : dir_(std::move(dir)), options_(options) {}

  Env* env() const {
    return options_.env != nullptr ? options_.env : Env::Default();
  }

  std::string SegmentPath(uint32_t segment) const;
  Status RollSegment();
  Status ScanExisting();
  Result<std::string> ReadAt(const RecordRef& ref, std::ifstream* stream,
                             int* open_segment) const;

  std::string dir_;
  Options options_;
  IntegrityCounters recovery_;
  std::vector<RecordRef> index_;
  uint32_t num_segments_ = 0;
  std::unique_ptr<WritableFile> active_;
  uint64_t active_bytes_ = 0;
};

}  // namespace structura::storage

#endif  // STRUCTURA_STORAGE_SEGMENT_STORE_H_
