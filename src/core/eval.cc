#include "core/eval.h"

#include <map>
#include <set>

#include "common/strings.h"
#include "query/relation.h"

namespace structura::core {
namespace {

/// LIKE with '%' — reuse the relation operator for consistency.
bool AttributeMatches(const std::string& attribute,
                      const std::string& pattern) {
  if (pattern.empty()) return true;
  query::Condition c;
  c.column = "attribute";
  c.op = query::CompareOp::kLike;
  c.literal = query::Value::Str(pattern);
  return c.Eval(query::Value::Str(attribute));
}

}  // namespace

std::string Score::ToString() const {
  return StrFormat("P=%.3f R=%.3f F1=%.3f (tp=%zu fp=%zu fn=%zu)",
                   precision(), recall(), f1(), true_positives,
                   false_positives, false_negatives);
}

std::string NormalizeValue(const std::string& value) {
  std::string out;
  for (char c : Trim(value)) {
    if (c != ',') out += c;
  }
  return out;
}

Score ScoreExtraction(const ie::FactSet& facts,
                      const corpus::GroundTruth& truth,
                      const std::string& attribute_filter) {
  // Truth triples in scope.
  std::set<std::string> truth_keys;
  for (const corpus::FactTruth& t : truth.facts) {
    if (!AttributeMatches(t.attribute, attribute_filter)) continue;
    truth_keys.insert(StrFormat("%llu\x1f%s\x1f%s",
                                static_cast<unsigned long long>(t.doc),
                                t.attribute.c_str(),
                                NormalizeValue(t.value).c_str()));
  }
  std::set<std::string> predicted;
  for (const ie::ExtractedFact& f : facts.facts) {
    if (!AttributeMatches(f.attribute, attribute_filter)) continue;
    // Mention facts have no ground-truth attribute counterpart here.
    if (StartsWith(f.attribute, "mention_")) continue;
    predicted.insert(StrFormat("%llu\x1f%s\x1f%s",
                               static_cast<unsigned long long>(f.doc),
                               f.attribute.c_str(),
                               NormalizeValue(f.value).c_str()));
  }
  Score s;
  for (const std::string& key : predicted) {
    if (truth_keys.count(key) > 0) {
      ++s.true_positives;
    } else {
      ++s.false_positives;
    }
  }
  s.false_negatives = truth_keys.size() - s.true_positives;
  return s;
}

Score ScoreBeliefs(
    const std::vector<uncertainty::AttributeBelief>& beliefs,
    const corpus::GroundTruth& truth) {
  // Truth: (canonical subject, attribute) -> normalized value. A fact may
  // be planted in several docs; values agree by construction.
  std::map<std::pair<std::string, std::string>, std::string> expected;
  for (const corpus::FactTruth& t : truth.facts) {
    auto name_it = truth.canonical_names.find(t.entity);
    if (name_it == truth.canonical_names.end()) continue;
    expected[{name_it->second, t.attribute}] = NormalizeValue(t.value);
  }
  Score s;
  std::set<std::pair<std::string, std::string>> answered;
  for (const uncertainty::AttributeBelief& b : beliefs) {
    auto it = expected.find({b.subject, b.attribute});
    if (it == expected.end()) continue;  // out-of-scope belief: ignore
    const uncertainty::ValueAlternative* top = b.Top();
    if (top == nullptr) continue;
    answered.insert({b.subject, b.attribute});
    if (NormalizeValue(top->value) == it->second) {
      ++s.true_positives;
    } else {
      ++s.false_positives;
    }
  }
  s.false_negatives = expected.size() - answered.size();
  return s;
}

Score ScoreClustering(const std::vector<corpus::EntityId>& truth_entities,
                      const std::vector<size_t>& cluster_of) {
  Score s;
  size_t n = std::min(truth_entities.size(), cluster_of.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool same_truth = truth_entities[i] == truth_entities[j];
      bool same_cluster = cluster_of[i] == cluster_of[j];
      if (same_cluster && same_truth) ++s.true_positives;
      if (same_cluster && !same_truth) ++s.false_positives;
      if (!same_cluster && same_truth) ++s.false_negatives;
    }
  }
  return s;
}

}  // namespace structura::core
