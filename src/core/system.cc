#include "core/system.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>

#include "common/failpoint.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/eval.h"
#include "core/schema_unify.h"
#include "ie/standard.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/hybrid.h"
#include "query/structured_query.h"
#include "serve/request_context.h"

namespace structura::core {
namespace {

/// Mirrors an IntegrityCounters snapshot into registry gauges under
/// `prefix` (e.g. integrity.scrub.records_verified). Gauges, not
/// counters: each recovery/scrub re-verifies everything, so the values
/// are "latest pass" readings rather than monotonic event counts.
void PublishIntegrityGauges(const std::string& prefix,
                            const IntegrityCounters& c) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
  auto set = [&](const char* name, uint64_t v) {
    r.GetGauge(prefix + "." + name)->Set(static_cast<int64_t>(v));
  };
  set("records_verified", c.records_verified);
  set("corrupt_records", c.corrupt_records);
  set("salvaged_records", c.salvaged_records);
  set("lost_txns", c.lost_txns);
  set("quarantined_segments", c.quarantined_segments);
  set("torn_tail_bytes", c.torn_tail_bytes);
  set("checkpoints_rejected", c.checkpoints_rejected);
}

}  // namespace

System::System(Options options)
    : options_(std::move(options)), users_(options_.seed) {}

System::~System() {
  StopWatchdog();
  // The commit listener captures the result cache; detach it before
  // members (cache included) are destroyed.
  if (db_ != nullptr) db_->SetCommitListener(nullptr);
  // The event journal is process-global but was stamping on this
  // system's clock; drop back to real time so a test-scoped
  // SimulatedClock cannot dangle there.
  if (options_.clock != nullptr) {
    obs::EventJournal::Instance().SetClock(nullptr);
  }
}

Result<std::unique_ptr<System>> System::Create(Options options) {
  std::unique_ptr<System> sys(new System(std::move(options)));
  rdbms::DatabaseOptions db_options;
  db_options.wal.env = sys->options_.env;
  db_options.wal.clock = sys->options_.clock;
  if (!sys->options_.workspace.empty()) {
    db_options.dir = sys->options_.workspace + "/db";
  }
  STRUCTURA_ASSIGN_OR_RETURN(sys->db_, rdbms::Database::Open(db_options));
  if (!sys->options_.workspace.empty()) {
    storage::SegmentStore::Options seg_options;
    seg_options.env = sys->options_.env;
    STRUCTURA_ASSIGN_OR_RETURN(
        sys->intermediate_,
        storage::SegmentStore::Open(
            sys->options_.workspace + "/intermediate", seg_options));
    // Snapshots get a durable journal too: every acknowledged crawl
    // version survives a restart.
    STRUCTURA_RETURN_IF_ERROR(sys->snapshots_.AttachJournal(
        sys->options_.workspace + "/snapshots", sys->options_.env));
  }
  IntegrityCounters recovered = sys->db_->recovery_report();
  if (sys->intermediate_ != nullptr) {
    recovered.Merge(sys->intermediate_->recovery_report());
  }
  recovered.Merge(sys->snapshots_.recovery_report());
  PublishIntegrityGauges("integrity.recovery", recovered);
  // Morsel-parallel query execution: one shared pool, threaded through
  // the execution context to every operator. parallelism <= 1 keeps
  // the serial path (no pool at all).
  sys->ctx_.exec.morsel_rows = sys->options_.query_morsel_rows;
  if (sys->options_.query_parallelism > 1) {
    sys->query_pool_ =
        std::make_unique<ThreadPool>(sys->options_.query_parallelism);
    sys->ctx_.exec.parallelism = sys->options_.query_parallelism;
    sys->ctx_.exec.pool = sys->query_pool_.get();
  }
  // Epoch-versioned result cache. The database's commit listener bumps
  // "table:<name>" at each durable commit; IngestCrawl bumps "docs";
  // the interpreter bumps "view:<name>" — so a stale hit is
  // structurally impossible: any committed write moves the epoch the
  // cached entry was snapshotted against.
  if (sys->options_.query_cache_entries > 0 &&
      sys->options_.query_cache_bytes > 0) {
    query::QueryResultCache::Options cache_options;
    cache_options.max_entries = sys->options_.query_cache_entries;
    cache_options.max_bytes = sys->options_.query_cache_bytes;
    cache_options.min_cost_score = sys->options_.query_cache_min_cost;
    sys->query_cache_ =
        std::make_unique<query::QueryResultCache>(cache_options);
    sys->ctx_.cache = sys->query_cache_.get();
    System* self = sys.get();
    // Degraded-mode policy: a browned-out or critical system serves
    // queries fresh (still correct, never stale) rather than risking a
    // cache warmed before the trouble; per-request no-cache rides the
    // serve layer's thread-local bypass.
    sys->ctx_.cache_gate = [self] {
      return !self->ReadOnly() &&
             self->health_.Overall() != serve::HealthState::kCritical &&
             !serve::CacheBypassed();
    };
    sys->db_->SetCommitListener(
        [self](const std::vector<std::string>& tables) {
          for (const std::string& t : tables) {
            self->query_cache_->epochs().Bump("table:" + t);
          }
        });
  }
  sys->RegisterBuiltinHealthSignals();
  // The flight recorder's event journal stamps on this system's clock
  // (process-global and observational; tests with a SimulatedClock get
  // deterministic stamps).
  obs::EventJournal::Instance().SetClock(sys->options_.clock);
  std::string incident_dir = sys->options_.incident_dir;
  if (incident_dir.empty()) {
    const char* env_dir = std::getenv("STRUCTURA_ARTIFACT_DIR");
    if (env_dir != nullptr) incident_dir = env_dir;
  }
  if (!incident_dir.empty()) {
    obs::IncidentManager::Options io;
    io.dir = incident_dir;
    io.cooldown_ms = sys->options_.incident_cooldown_ms;
    io.clock = sys->options_.clock;
    sys->incidents_ = std::make_unique<obs::IncidentManager>(io);
    // Sections render at dump time, so every bundle is a snapshot of
    // the instant its trigger fired.
    System* raw = sys.get();
    sys->incidents_->AddSection("metrics.prom",
                                [] { return MetricsPrometheus(); });
    sys->incidents_->AddSection("metrics.json", [] { return MetricsJson(); });
    sys->incidents_->AddSection("health.json",
                                [raw] { return raw->HealthJson(); });
    sys->incidents_->AddSection("status.txt",
                                [raw] { return raw->StatusReport(); });
    sys->incidents_->AddSection("events.json", [] {
      return obs::EventJournal::Instance().TailJson(512);
    });
    sys->incidents_->AddSection("expensive.json",
                                [] { return ExpensiveRequestsJson(); });
    sys->incidents_->AddSection("slow.json", [] {
      std::string out = "[";
      bool first = true;
      for (const obs::SlowRequestLog::Entry& e :
           obs::SlowRequestLog::Instance().Recent()) {
        if (!first) out += ',';
        first = false;
        out += "{\"trace_id\":" + std::to_string(e.trace_id) +
               ",\"duration_ns\":" + std::to_string(e.duration_ns) +
               ",\"root\":\"" + obs::JsonEscape(e.root_name) +
               "\",\"tree\":\"" + obs::JsonEscape(e.tree) + "\"}";
      }
      return out + "]";
    });
  }
  return sys;
}

void System::RegisterBuiltinHealthSignals() {
  // storage.wal: the final store's WAL + checkpoint. Judged by the
  // latest scrub once one ran (a clean scrub is what heals the
  // subsystem), else by what recovery found at open.
  health_.Register("storage.wal", "integrity", [this] {
    {
      std::lock_guard<std::mutex> lock(scrub_mutex_);
      if (scrubbed_) {
        if (last_scrub_db_.AnyDamage()) {
          return serve::HealthSample{serve::HealthState::kDegraded,
                                     "scrub: " + last_scrub_db_.ToString()};
        }
        return serve::HealthSample{};
      }
    }
    IntegrityCounters rec = db_->recovery_report();
    if (rec.AnyDamage()) {
      return serve::HealthSample{serve::HealthState::kDegraded,
                                 "recovery: " + rec.ToString()};
    }
    return serve::HealthSample{};
  });
  // storage.segments: the intermediate segment log + snapshot store.
  health_.Register("storage.segments", "integrity", [this] {
    {
      std::lock_guard<std::mutex> lock(scrub_mutex_);
      if (scrubbed_) {
        IntegrityCounters c = last_scrub_segments_;
        c.Merge(last_scrub_snapshots_);
        if (c.AnyDamage()) {
          return serve::HealthSample{serve::HealthState::kDegraded,
                                     "scrub: " + c.ToString()};
        }
        return serve::HealthSample{};
      }
    }
    if (intermediate_ != nullptr) {
      IntegrityCounters rec = intermediate_->recovery_report();
      if (rec.AnyDamage()) {
        return serve::HealthSample{serve::HealthState::kDegraded,
                                   "recovery: " + rec.ToString()};
      }
    }
    return serve::HealthSample{};
  });
  // storage.disk: the I/O environment itself. Cheap while quiet (two
  // relaxed loads); when the env's failure ledger advances or a sink
  // is latched failed, it probes the workspace with a real
  // write+fsync. Unwritable disk or a sink pending heal → critical;
  // the serve layer keys read-only brownout off this signal. The
  // baseline lives behind a shared_ptr for the same copied-SignalFn
  // reason as the ie signal below.
  Env* e = env();
  health_.Register(
      "storage.disk", "io",
      [this, e,
       seen = std::make_shared<std::atomic<uint64_t>>(e->io_failures())] {
        if (options_.workspace.empty()) return serve::HealthSample{};
        uint64_t now = e->io_failures();
        bool sink_failed = ReadOnly();
        if (now == seen->load() && !sink_failed) {
          return serve::HealthSample{};
        }
        Status probe = e->ProbeWrite(options_.workspace);
        if (!probe.ok()) {
          // The probe itself advances the ledger, so the next
          // evaluation re-probes instead of trusting a stale verdict.
          return serve::HealthSample{serve::HealthState::kCritical,
                                     "disk unwritable: " + probe.message()};
        }
        seen->store(now);
        if (sink_failed) {
          return serve::HealthSample{
              serve::HealthState::kCritical,
              "write path failed (pending heal): " + ReadOnlyReason()};
        }
        return serve::HealthSample{serve::HealthState::kDegraded,
                                   "i/o failure(s) observed; probe ok: " +
                                       e->last_io_error()};
      });
  // ie: extraction faults + quarantines, read from the registry only —
  // never from ctx_, which the executor mutates concurrently. Baselines
  // discount counts left behind by earlier Systems in this process
  // (the registry is process-global).
  obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
  obs::Counter* faults = r.GetCounter("ie.extract.faults");
  obs::Gauge* quarantined = r.GetGauge("ie.quarantined_extractors");
  int64_t quarantine_base = quarantined->Value();
  health_.Register(
      "ie", "faults",
      // The fault baseline lives behind a shared_ptr because Evaluate()
      // invokes a *copy* of each SignalFn: plain mutable lambda state
      // would be mutated on the copy and discarded, leaving delta > 0
      // forever after one fault (permanently-degraded "ie"). Sharing it
      // lets every copy advance the same baseline; Evaluate() is
      // serialized, so no further synchronization is needed.
      [this, faults, quarantined, quarantine_base,
       last = std::make_shared<uint64_t>(faults->Value())] {
        int64_t q = quarantined->Value() - quarantine_base;
        size_t total = extractor_count_.load();
        if (total > 0 && q >= static_cast<int64_t>(total)) {
          return serve::HealthSample{serve::HealthState::kCritical,
                                     "all extractors quarantined"};
        }
        uint64_t now = faults->Value();
        uint64_t delta = now - *last;
        *last = now;
        if (q > 0) {
          return serve::HealthSample{
              serve::HealthState::kDegraded,
              std::to_string(q) + " extractor(s) quarantined"};
        }
        if (delta > 0) {
          return serve::HealthSample{
              serve::HealthState::kDegraded,
              std::to_string(delta) + " extraction fault(s) since last check"};
        }
        return serve::HealthSample{};
      });
}

bool System::ReadOnly() const {
  return db_->WalFailed() ||
         (intermediate_ != nullptr && intermediate_->Failed()) ||
         snapshots_.Failed();
}

std::string System::ReadOnlyReason() const {
  std::string reason;
  auto add = [&](const std::string& part) {
    if (!reason.empty()) reason += "; ";
    reason += part;
  };
  if (db_->WalFailed()) {
    add("wal: " + db_->WalFailedStatus().message());
  }
  if (intermediate_ != nullptr && intermediate_->Failed()) {
    add("intermediate segment log failed");
  }
  if (snapshots_.Failed()) add("snapshot journal failed");
  return reason;
}

Status System::HealStorage() {
  if (options_.workspace.empty()) return Status::OK();
  Status result = [&]() -> Status {
    // Gate on a real probe: handing fresh handles to a still-dead disk
    // would just re-latch them (and burn the WAL's checkpoint work).
    STRUCTURA_RETURN_IF_ERROR(env()->ProbeWrite(options_.workspace));
    if (db_->WalFailed()) {
      // Checkpoint is the WAL's recovery point: it durably captures the
      // in-memory state, then Reset() opens a fresh handle — so the new
      // WAL never diverges from what memory already holds.
      STRUCTURA_RETURN_IF_ERROR(db_->Checkpoint());
    }
    if (intermediate_ != nullptr && intermediate_->Failed()) {
      STRUCTURA_RETURN_IF_ERROR(intermediate_->ReopenActive());
    }
    if (snapshots_.Failed()) {
      STRUCTURA_RETURN_IF_ERROR(snapshots_.ReopenJournal());
    }
    return Status::OK();
  }();
  last_heal_nanos_.store(clock()->NowNanos());
  obs::RecordEvent(obs::EventCategory::kWatchdog,
                   obs::EventCode::kWatchdogHeal, result.ok() ? 0 : 1, 0, 0,
                   "heal storage");
  return result;
}

void System::StartWatchdog(WatchdogOptions options) {
  StopWatchdog();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_options_ = options;
    watchdog_stop_ = false;
  }
  watchdog_running_.store(true);
  watchdog_ = std::thread([this] { WatchdogLoop(); });
}

void System::StopWatchdog() {
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  watchdog_running_.store(false);
}

void System::MaybeIncident(const char* trigger) {
  if (incidents_ == nullptr || !watchdog_options_.auto_incident) return;
  (void)incidents_->MaybeDump(trigger);
}

void System::WatchdogLoop() {
  Clock* clk = clock();
  int64_t last_auto_scrub = -1;  // -1: first scrub is immediate
  int64_t last_auto_heal = -1;
  // Flight-recorder trigger state: edge detection over read-only /
  // overall health, counter-delta detection over breaker opens and
  // slow requests. The registry counters are process-global, so the
  // baselines start at their current values.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* breaker_opens =
      reg.GetCounter("serve.breaker.open_transitions");
  obs::Counter* slow_requests = reg.GetCounter("obs.trace.slow_requests");
  uint64_t seen_opens = breaker_opens->Value();
  uint64_t seen_slow = slow_requests->Value();
  uint64_t flap_accum = 0;
  bool prev_read_only = false;
  serve::HealthState prev_overall = serve::HealthState::kHealthy;
  while (true) {
    health_.Evaluate();
    watchdog_ticks_.fetch_add(1);
    // --- flight-recorder triggers (before auto-heal, so a latch the
    // heal below repairs within this same tick is still recorded) ---
    bool read_only = ReadOnly();
    if (read_only != prev_read_only) {
      prev_read_only = read_only;
      obs::RecordEvent(obs::EventCategory::kReadOnly,
                       read_only ? obs::EventCode::kReadOnlyEnter
                                 : obs::EventCode::kReadOnlyExit,
                       0, 0, 0, "watchdog");
      if (read_only) MaybeIncident("read_only_entered");
    }
    serve::HealthState overall = health_.Overall();
    if (overall == serve::HealthState::kCritical &&
        prev_overall != serve::HealthState::kCritical) {
      MaybeIncident("health_critical");
    }
    prev_overall = overall;
    uint64_t opens_now = breaker_opens->Value();
    uint64_t opens_delta = opens_now - seen_opens;
    seen_opens = opens_now;
    if (opens_delta > 0) {
      flap_accum += opens_delta;
      if (flap_accum >= watchdog_options_.breaker_flap_threshold) {
        MaybeIncident("breaker_flap");
        flap_accum = 0;
      }
    } else {
      // A quiet tick resets the accumulator: a flap is repeated opens
      // in quick succession, not N opens spread over a lifetime.
      flap_accum = 0;
    }
    uint64_t slow_now = slow_requests->Value();
    if (slow_now != seen_slow) {
      seen_slow = slow_now;
      MaybeIncident("slow_request");
    }
    if (watchdog_options_.auto_heal &&
        health_.StateOf("storage.disk") != serve::HealthState::kHealthy) {
      int64_t now = clk->NowNanos();
      if (last_auto_heal < 0 ||
          now - last_auto_heal >=
              static_cast<int64_t>(watchdog_options_.heal_cooldown_ms) *
                  1'000'000) {
        last_auto_heal = now;
        watchdog_heals_.fetch_add(1);
        // A failed heal (disk still dead) is fine: the signal stays
        // critical and the next cooldown window retries the probe.
        Status healed = HealStorage();
        if (!healed.ok()) {
          STRUCTURA_LOG(kWarning)
              << "watchdog heal attempt failed: " << healed.ToString();
        }
        // Fold the post-heal verdict in right away so the brownout
        // lifts in one cooldown rather than cooldown + promote_after.
        health_.Evaluate();
        watchdog_ticks_.fetch_add(1);
      }
    }
    if (watchdog_options_.auto_scrub) {
      bool storage_trouble =
          health_.StateOf("storage.wal") != serve::HealthState::kHealthy ||
          health_.StateOf("storage.segments") != serve::HealthState::kHealthy;
      int64_t now = clk->NowNanos();
      bool cooled =
          last_auto_scrub < 0 ||
          now - last_auto_scrub >=
              static_cast<int64_t>(watchdog_options_.scrub_cooldown_ms) *
                  1'000'000;
      if (storage_trouble && cooled) {
        last_auto_scrub = now;
        watchdog_scrubs_.fetch_add(1);
        // A failed scrub (e.g. an injected fault) is itself evidence;
        // the signals see it on the next evaluation either way.
        (void)ScrubStorage();
        // Fold the fresh scrub verdict in right away, so healing costs
        // one cooldown rather than cooldown + promote_after intervals.
        health_.Evaluate();
        watchdog_ticks_.fetch_add(1);
      }
    }
    std::unique_lock<std::mutex> lock(watchdog_mutex_);
    if (clk->WaitForPred(
            watchdog_cv_, lock,
            static_cast<int64_t>(watchdog_options_.interval_ms) * 1'000'000,
            [this] { return watchdog_stop_; })) {
      return;
    }
  }
}

std::string System::HealthJson() const {
  uint64_t interval_ms;
  {
    // Snapshot under the lock: StartWatchdog() may be reassigning
    // watchdog_options_ concurrently on a restart.
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    interval_ms = watchdog_options_.interval_ms;
  }
  std::string out = "{\"health\":";
  out += health_.ToJson();
  out += ",\"watchdog\":{\"running\":";
  out += watchdog_running_.load() ? "true" : "false";
  out += ",\"interval_ms\":" + std::to_string(interval_ms);
  out += ",\"ticks\":" + std::to_string(watchdog_ticks_.load());
  out += ",\"auto_scrubs\":" + std::to_string(watchdog_scrubs_.load());
  out += ",\"auto_heals\":" + std::to_string(watchdog_heals_.load());
  out += "}}";
  return out;
}

Status System::IngestCrawl(const text::DocumentCollection& docs) {
  // Change detection: a page is dirty when its text differs from the
  // previous crawl (or is new). REFRESH VIEW re-extracts only these.
  ctx_.dirty_docs.clear();
  for (const text::Document& doc : docs.docs) {
    uint64_t h = Fnv1a64(doc.text);
    auto it = last_text_hash_.find(doc.id);
    if (it == last_text_hash_.end() || it->second != h) {
      ctx_.dirty_docs.insert(doc.id);
      last_text_hash_[doc.id] = h;
    }
    STRUCTURA_RETURN_IF_ERROR(
        snapshots_.Append(doc.id, doc.text).status());
  }
  // Durability point for the whole crawl: one fsync covers every
  // journaled append above.
  STRUCTURA_RETURN_IF_ERROR(snapshots_.Sync());
  docs_ = docs;
  keyword_index_ = query::KeywordIndex();
  for (const text::Document& doc : docs_.docs) {
    keyword_index_.AddDocument(doc);
  }
  keyword_index_.Finalize();
  // A new crawl is a new "docs" epoch: every cached result that read
  // documents (directly or via a view) is invalidated at next lookup.
  if (query_cache_ != nullptr) query_cache_->epochs().Bump("docs");
  ctx_.docs = &docs_;
  ctx_.db = db_.get();
  monitor_.RecordDocsProcessed(docs.size());
  return Status::OK();
}

void System::RegisterExtractor(std::string name,
                               ie::ExtractorPtr extractor,
                               std::string attribute_pattern) {
  ctx_.extractors[name] = extractor.get();
  ctx_.extractor_attributes[std::move(name)] =
      std::move(attribute_pattern);
  owned_extractors_.push_back(std::move(extractor));
  // Registered-extractor census for the "ie" health signal (atomic:
  // the watchdog reads it concurrently).
  extractor_count_.store(ctx_.extractors.size());
}

void System::RegisterStandardOperators() {
  RegisterExtractor("infobox", ie::MakeInfoboxExtractor(), "%");
  RegisterExtractor("temp_sentence", ie::MakeTemperatureExtractor(),
                    "temp_%");
  RegisterExtractor("population_sentence", ie::MakePopulationExtractor(),
                    "population");
  RegisterExtractor("founded_sentence", ie::MakeFoundedExtractor(),
                    "founded");
  RegisterExtractor("elevation_sentence", ie::MakeElevationExtractor(),
                    "elevation");
  RegisterExtractor("mayor_sentence", ie::MakeMayorExtractor(), "mayor");
  RegisterExtractor("residence_sentence", ie::MakeResidenceExtractor(),
                    "residence");
  owned_matchers_.push_back(std::make_unique<ii::NameMatcher>());
  ctx_.matchers["name"] = owned_matchers_.back().get();
  owned_matchers_.push_back(std::make_unique<ii::JaroWinklerMatcher>());
  ctx_.matchers["jaro_winkler"] = owned_matchers_.back().get();
  owned_matchers_.push_back(std::make_unique<ii::LevenshteinMatcher>());
  ctx_.matchers["levenshtein"] = owned_matchers_.back().get();
}

Result<std::vector<lang::Interpreter::StatementResult>> System::RunProgram(
    const std::string& sdl) {
  lang::Interpreter::Options opts;
  opts.optimize = options_.optimize_plans;
  lang::Interpreter interp(&ctx_, opts);
  return interp.Run(sdl);
}

Result<query::Relation> System::Query(const std::string& sdl) {
  lang::Interpreter::Options opts;
  opts.optimize = options_.optimize_plans;
  lang::Interpreter interp(&ctx_, opts);
  return interp.Query(sdl);
}

const query::Relation* System::View(const std::string& name) const {
  auto it = ctx_.views.find(name);
  return it == ctx_.views.end() ? nullptr : &it->second;
}

Status System::BuildBeliefsFromView(const std::string& view) {
  const query::Relation* rel = View(view);
  if (rel == nullptr) return Status::NotFound("no view " + view);
  int subject_col = rel->ColumnIndex("entity");
  if (subject_col < 0) subject_col = rel->ColumnIndex("subject");
  int attr_col = rel->ColumnIndex("attribute");
  int value_col = rel->ColumnIndex("value");
  int conf_col = rel->ColumnIndex("confidence");
  int doc_col = rel->ColumnIndex("doc");
  int extractor_col = rel->ColumnIndex("extractor");
  if (subject_col < 0 || attr_col < 0 || value_col < 0) {
    return Status::InvalidArgument(
        "view lacks subject/attribute/value columns");
  }

  current_facts_ = ie::FactSet();
  std::map<uint64_t, provenance::NodeId> doc_nodes;
  std::map<uint64_t, provenance::NodeId> fact_nodes;
  for (const query::Row& row : rel->rows()) {
    ie::ExtractedFact fact;
    fact.subject = row[static_cast<size_t>(subject_col)].ToString();
    fact.attribute = row[static_cast<size_t>(attr_col)].ToString();
    fact.value = row[static_cast<size_t>(value_col)].ToString();
    fact.confidence =
        conf_col < 0 ? 1.0
                     : [&] {
                         double c = 1.0;
                         row[static_cast<size_t>(conf_col)].ToNumber(&c);
                         return c;
                       }();
    if (doc_col >= 0 && row[static_cast<size_t>(doc_col)].type() ==
                            rdbms::ValueType::kInt) {
      fact.doc = static_cast<text::DocId>(
          row[static_cast<size_t>(doc_col)].as_int());
    }
    if (extractor_col >= 0) {
      fact.extractor =
          row[static_cast<size_t>(extractor_col)].ToString();
    }
    uint64_t id = current_facts_.Add(std::move(fact));
    const ie::ExtractedFact& added = current_facts_.facts.back();
    // Provenance: doc -> fact.
    provenance::NodeId doc_node = 0;
    auto dn = doc_nodes.find(added.doc);
    if (dn == doc_nodes.end()) {
      doc_node = lineage_.AddNode(
          provenance::NodeKind::kDocument,
          StrFormat("doc#%llu",
                    static_cast<unsigned long long>(added.doc)));
      doc_nodes[added.doc] = doc_node;
    } else {
      doc_node = dn->second;
    }
    provenance::NodeId fact_node = lineage_.AddNode(
        provenance::NodeKind::kFact,
        StrFormat("fact#%llu %s.%s=%s (%s)",
                  static_cast<unsigned long long>(id),
                  added.subject.c_str(), added.attribute.c_str(),
                  added.value.c_str(), added.extractor.c_str()));
    lineage_.AddEdge(fact_node, doc_node, "extracted-from");
    fact_nodes[id] = fact_node;
  }

  beliefs_ = uncertainty::BuildBeliefs(current_facts_);
  for (const uncertainty::AttributeBelief& b : beliefs_) {
    provenance::NodeId belief_node = lineage_.AddNode(
        provenance::NodeKind::kBelief,
        StrFormat("belief %s.%s", b.subject.c_str(), b.attribute.c_str()));
    lineage_.Bind("belief:" + b.subject + ":" + b.attribute, belief_node);
    for (const uncertainty::ValueAlternative& alt : b.alternatives) {
      for (uint64_t fid : alt.supporting_facts) {
        auto it = fact_nodes.find(fid);
        if (it != fact_nodes.end()) {
          lineage_.AddEdge(belief_node, it->second, "aggregates");
        }
      }
    }
  }
  fact_view_ = view;
  query::KeywordTranslator::Options topt;
  topt.fact_view = view;
  translator_ = query::KeywordTranslator(topt);
  translator_.BuildVocabulary(*rel);
  monitor_.RecordFactsExtracted(current_facts_.size());
  return Status::OK();
}

Result<std::string> System::Explain(const std::string& subject,
                                    const std::string& attribute) const {
  STRUCTURA_ASSIGN_OR_RETURN(
      provenance::NodeId node,
      lineage_.Lookup("belief:" + subject + ":" + attribute));
  return lineage_.Explain(node);
}

std::vector<debugger::Violation> System::AuditFacts() {
  debugger_.LearnFromFacts(current_facts_);
  std::vector<debugger::Violation> violations =
      debugger_.Check(current_facts_);
  monitor_.RecordViolations(violations.size());
  return violations;
}

Result<std::map<std::string, std::string>> System::UnifyViewSchema(
    const std::string& view,
    const std::vector<std::string>& canonical_attributes,
    const ii::SchemaMatchOptions& options) {
  auto it = ctx_.views.find(view);
  if (it == ctx_.views.end()) return Status::NotFound("no view " + view);
  STRUCTURA_ASSIGN_OR_RETURN(
      UnifyResult unified,
      UnifySchema(it->second, canonical_attributes, options));
  it->second = std::move(unified.unified);
  // The view was rewritten outside the interpreter: bump its epoch so
  // cached results over it are invalidated.
  if (query_cache_ != nullptr) query_cache_->epochs().Bump("view:" + view);
  return unified.renames;
}

Status System::Watch(query::StandingQueryRegistry::Spec spec) {
  return watches_.Add(std::move(spec));
}

Result<std::vector<query::Alert>> System::CheckWatches(
    const std::string& view) {
  const query::Relation* rel = View(view);
  if (rel == nullptr) return Status::NotFound("no view " + view);
  return watches_.Evaluate(view, *rel);
}

std::string System::StatusReport() const {
  std::string out = "== system status ==\n";
  out += StrFormat("documents: %zu (snapshot store: %zu pages, %.2f MB "
                   "stored vs %.2f MB full)\n",
                   docs_.size(), snapshots_.NumPages(),
                   static_cast<double>(snapshots_.StoredBytes()) / 1e6,
                   static_cast<double>(snapshots_.FullCopyBytes()) / 1e6);
  out += StrFormat("views: %zu (", ctx_.views.size());
  bool first = true;
  for (const auto& [name, rel] : ctx_.views) {
    if (!first) out += ", ";
    first = false;
    out += StrFormat("%s: %zu rows", name.c_str(), rel.size());
  }
  out += ")\n";
  out += StrFormat("beliefs: %zu over view \"%s\"; lineage: %zu nodes, "
                   "%zu edges\n",
                   beliefs_.size(), fact_view_.c_str(),
                   lineage_.NumNodes(), lineage_.NumEdges());
  out += StrFormat("users: %zu; standing queries: %zu\n",
                   users_.NumUsers(), watches_.size());
  out += "monitor: " + monitor_.Report() + "\n";
  if (!ctx_.extractor_faults.empty()) {
    out += "degraded operators:";
    for (const auto& [name, faults] : ctx_.extractor_faults) {
      out += StrFormat(
          " %s(faults=%zu%s)", name.c_str(), faults,
          ctx_.quarantined_extractors.count(name) > 0 ? ", quarantined"
                                                      : "");
    }
    out += '\n';
  }
  if (serving_stats_) {
    out += "serving: " + serving_stats_().ToString() + "\n";
  }
  if (query_cache_ != nullptr) {
    query::QueryResultCache::Stats cs = query_cache_->stats();
    out += StrFormat(
        "query cache: %zu entries, %zu bytes; hits=%llu misses=%llu "
        "evictions=%llu invalidations=%llu rejected=%llu",
        cs.entries, cs.bytes, static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.evictions),
        static_cast<unsigned long long>(cs.invalidations),
        static_cast<unsigned long long>(cs.rejected));
    if (ReadOnly()) {
      out += " (bypassed: read-only brownout)";
    } else if (health_.Overall() == serve::HealthState::kCritical) {
      out += " (bypassed: health critical)";
    }
    out += '\n';
  }
  if (query_pool_ != nullptr) {
    out += StrFormat("query execution: morsel-parallel, %zu workers, "
                     "%zu-row morsels\n",
                     options_.query_parallelism, options_.query_morsel_rows);
  }
  if (ReadOnly()) {
    out += "mode: READ-ONLY (" + ReadOnlyReason() + ")\n";
  }
  if (health_.evaluations() > 0) {
    out += StrFormat("health: overall %s (watchdog %s, %llu ticks, %llu "
                     "auto-scrubs, %llu auto-heals)",
                     serve::HealthStateName(health_.Overall()),
                     WatchdogRunning() ? "running" : "stopped",
                     static_cast<unsigned long long>(WatchdogTicks()),
                     static_cast<unsigned long long>(WatchdogAutoScrubs()),
                     static_cast<unsigned long long>(WatchdogAutoHeals()));
    for (const serve::HealthModel::SourceStatus& s : health_.Snapshot()) {
      if (s.state == serve::HealthState::kHealthy) continue;
      out += StrFormat("; %s %s (%s)", s.subsystem.c_str(),
                       serve::HealthStateName(s.state), s.reason.c_str());
    }
    out += '\n';
  }
  {
    // Forensics ages, on the system clock: how stale is the evidence?
    int64_t now = clock()->NowNanos();
    auto age = [now](int64_t at) {
      return at < 0 ? std::string("never")
                    : StrFormat("%.1fs ago",
                                static_cast<double>(now - at) / 1e9);
    };
    int64_t incident_at =
        incidents_ != nullptr ? incidents_->last_dump_nanos() : -1;
    out += StrFormat("forensics: last scrub %s, last heal %s, "
                     "last incident %s",
                     age(last_scrub_nanos_.load()).c_str(),
                     age(last_heal_nanos_.load()).c_str(),
                     age(incident_at).c_str());
    if (incidents_ != nullptr) {
      out += StrFormat(
          " (bundles=%llu suppressed=%llu dir=%s)",
          static_cast<unsigned long long>(incidents_->dumps()),
          static_cast<unsigned long long>(incidents_->suppressed()),
          incidents_->dir().c_str());
    }
    out += StrFormat("; events recorded: %llu",
                     static_cast<unsigned long long>(
                         obs::EventJournal::Instance().recorded()));
    out += '\n';
  }
  IntegrityCounters recovered = db_->recovery_report();
  if (intermediate_ != nullptr) {
    recovered.Merge(intermediate_->recovery_report());
  }
  IntegrityCounters scrub_snapshot;
  bool scrubbed;
  {
    std::lock_guard<std::mutex> lock(scrub_mutex_);
    scrubbed = scrubbed_;
    scrub_snapshot = last_scrub_;
  }
  if (recovered.AnyDamage() || scrubbed) {
    out += "integrity: recovery " + recovered.ToString();
    if (scrubbed) out += "; last scrub " + scrub_snapshot.ToString();
    out += '\n';
  }
  std::vector<std::pair<std::string, FailpointRegistry::Counters>> fps =
      FailpointRegistry::Instance().Snapshot();
  if (!fps.empty()) {
    out += "failpoints:";
    for (const auto& [name, counters] : fps) {
      out += StrFormat(
          " %s(hits=%llu, fires=%llu)", name.c_str(),
          static_cast<unsigned long long>(counters.hits),
          static_cast<unsigned long long>(counters.fires));
    }
    out += '\n';
  }
  // Process metrics registry: the same snapshot type MetricsPrometheus /
  // MetricsJson render, compacted for operators.
  std::string metrics =
      obs::RenderCompact(obs::MetricsRegistry::Default().Snapshot());
  if (!metrics.empty()) out += metrics;
  return out;
}

std::string System::MetricsPrometheus() {
  return obs::RenderPrometheus(obs::MetricsRegistry::Default().Snapshot());
}

std::string System::MetricsJson() {
  return obs::RenderJson(obs::MetricsRegistry::Default().Snapshot());
}

std::string System::ExpensiveRequestsJson() {
  return obs::ExpensiveRequestTracker::Instance().ToJson();
}

Result<size_t> System::RunFeedbackRound(
    const Oracle& oracle, std::vector<hi::SimulatedUser>* crowd,
    const FeedbackOptions& options) {
  if (crowd == nullptr || crowd->empty()) {
    return Status::InvalidArgument("empty crowd");
  }
  // Ensure crowd members have accounts.
  for (const hi::SimulatedUser& u : *crowd) {
    if (!users_.GetUser(u.name()).ok()) {
      STRUCTURA_RETURN_IF_ERROR(
          users_.Register(u.name(), "pw", user::Role::kOrdinary));
    }
  }

  // Rank beliefs by uncertainty of their top alternative.
  std::vector<size_t> order(beliefs_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto top_prob = [&](size_t i) {
    const uncertainty::ValueAlternative* top = beliefs_[i].Top();
    return top == nullptr ? 0.0 : top->probability;
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ua = std::abs(top_prob(a) - 0.5);
    double ub = std::abs(top_prob(b) - 0.5);
    if (ua != ub) return ua < ub;
    return a < b;
  });

  hi::TaskQueue queue;
  std::map<uint64_t, size_t> task_belief;
  std::map<uint64_t, std::string> task_truth;
  std::map<uint64_t, std::vector<std::string>> task_options;
  for (size_t i : order) {
    if (queue.size() >= options.budget) break;
    const uncertainty::AttributeBelief& b = beliefs_[i];
    std::optional<std::string> truth = oracle(b.subject, b.attribute);
    if (!truth.has_value()) continue;
    uint64_t id = next_task_id_++;
    // Choose-one tasks throughout: users can both *verify* the extracted
    // candidates and *supply* the right value (the paper's users
    // "provide domain knowledge"), modeled as a write-in option equal to
    // the oracle's truth.
    std::vector<std::string> candidates;
    for (const uncertainty::ValueAlternative& alt : b.alternatives) {
      candidates.push_back(alt.value);
    }
    hi::Task task = hi::MakeChooseValueTask(
        id, b.subject, b.attribute, candidates, top_prob(i), i);
    if (std::find(task.options.begin(), task.options.end(), *truth) ==
        task.options.end()) {
      task.options.push_back(*truth);
    }
    task_truth[id] = *truth;
    task_belief[id] = i;
    task_options[id] = task.options;
    queue.Push(std::move(task));
  }

  // Collect crowd answers.
  std::vector<hi::Answer> all_answers;
  std::map<uint64_t, std::vector<hi::Answer>> per_task;
  std::map<uint64_t, hi::Task> tasks;
  size_t asked = 0;
  size_t next_user = 0;
  while (std::optional<hi::Task> task = queue.Pop()) {
    ++asked;
    for (size_t a = 0; a < options.answers_per_task; ++a) {
      hi::SimulatedUser& u = (*crowd)[next_user % crowd->size()];
      ++next_user;
      hi::Answer answer = u.Respond(*task, task_truth[task->id]);
      per_task[task->id].push_back(answer);
      all_answers.push_back(std::move(answer));
    }
    tasks[task->id] = std::move(*task);
  }
  monitor_.RecordTasksAnswered(all_answers.size());

  // Aggregate and apply.
  std::map<uint64_t, hi::AggregatedAnswer> consensus;
  if (options.aggregation == Aggregation::kDawidSkene) {
    hi::DawidSkeneResult ds = hi::DawidSkene(all_answers, task_options);
    consensus = ds.task_answers;
  } else {
    std::map<std::string, double> weights;
    if (options.aggregation == Aggregation::kWeighted) {
      weights = users_.ReputationWeights();
    }
    for (const auto& [task_id, answers] : per_task) {
      consensus[task_id] = options.aggregation == Aggregation::kMajority
                               ? hi::MajorityVote(answers)
                               : hi::WeightedVote(answers, weights);
    }
  }

  for (const auto& [task_id, agg] : consensus) {
    size_t belief_index = task_belief[task_id];
    uncertainty::AttributeBelief& belief = beliefs_[belief_index];
    const hi::Task& task = tasks[task_id];
    double strength = std::min(0.99, std::max(0.55, agg.confidence));
    if (task.type == hi::Task::Type::kChooseValue) {
      uncertainty::ConfirmValue(&belief, agg.choice, strength);
    } else if (agg.choice == "yes") {
      const uncertainty::ValueAlternative* top = belief.Top();
      if (top != nullptr) {
        uncertainty::ConfirmValue(&belief, top->value, strength);
      }
    } else {
      const uncertainty::ValueAlternative* top = belief.Top();
      if (top != nullptr) {
        uncertainty::RejectValue(&belief, top->value);
      }
    }
    // Provenance: feedback node supporting the belief.
    provenance::NodeId fb = lineage_.AddNode(
        provenance::NodeKind::kUserFeedback,
        StrFormat("consensus \"%s\" (%.2f) on task#%llu",
                  agg.choice.c_str(), agg.confidence,
                  static_cast<unsigned long long>(task_id)));
    Result<provenance::NodeId> belief_node = lineage_.Lookup(
        "belief:" + belief.subject + ":" + belief.attribute);
    if (belief_node.ok()) {
      lineage_.AddEdge(*belief_node, fb, "adjusted-by");
    }
    // Reputation updates: agreement with consensus.
    for (const hi::Answer& a : per_task[task_id]) {
      users_.RecordFeedback(a.user, a.choice == agg.choice);
    }
  }
  return asked;
}

Status System::MaterializeBeliefs(const std::string& table) {
  if (ReadOnly()) {
    // Read-only brownout: refuse up front instead of letting the
    // transaction fail halfway through its inserts.
    return Status::Unavailable("system is read-only (storage failure): " +
                               ReadOnlyReason());
  }
  if (db_->GetTable(table) == nullptr) {
    rdbms::TableSchema schema;
    schema.table_name = table;
    schema.columns = {{"subject", rdbms::ValueType::kString},
                      {"attribute", rdbms::ValueType::kString},
                      {"value", rdbms::ValueType::kString},
                      {"confidence", rdbms::ValueType::kDouble}};
    STRUCTURA_RETURN_IF_ERROR(db_->CreateTable(schema).status());
  }
  std::unique_ptr<rdbms::Transaction> txn = db_->Begin();
  for (const uncertainty::AttributeBelief& b : beliefs_) {
    const uncertainty::ValueAlternative* top = b.Top();
    if (top == nullptr || top->probability <= 0) continue;
    rdbms::Row row = {rdbms::Value::Str(b.subject),
                      rdbms::Value::Str(b.attribute),
                      rdbms::Value::Str(top->value),
                      rdbms::Value::Double(top->probability)};
    STRUCTURA_ASSIGN_OR_RETURN(rdbms::RowId rid,
                               txn->Insert(table, std::move(row)));
    provenance::NodeId tuple = lineage_.AddNode(
        provenance::NodeKind::kTuple,
        StrFormat("%s[%llu] %s.%s=%s", table.c_str(),
                  static_cast<unsigned long long>(rid),
                  b.subject.c_str(), b.attribute.c_str(),
                  top->value.c_str()));
    Result<provenance::NodeId> belief_node =
        lineage_.Lookup("belief:" + b.subject + ":" + b.attribute);
    if (belief_node.ok()) {
      lineage_.AddEdge(tuple, *belief_node, "materializes");
    }
    // Best-effort copy into the sequential intermediate log (feeds
    // downstream batch consumers; the transactional store remains the
    // source of truth).
    if (intermediate_ != nullptr) {
      Result<uint64_t> appended = intermediate_->Append(
          StrFormat("%s\t%s\t%s\t%.6f", b.subject.c_str(),
                    b.attribute.c_str(), top->value.c_str(),
                    top->probability));
      if (!appended.ok()) {
        STRUCTURA_LOG(kWarning) << "intermediate log append failed: "
                                << appended.status().ToString();
      }
    }
  }
  STRUCTURA_RETURN_IF_ERROR(txn->Commit());
  // The intermediate log is best-effort (the transactional store is
  // the source of truth), but push its copies to disk while we're at
  // a batch boundary — a failure here degrades, not aborts.
  if (intermediate_ != nullptr) {
    Status synced = intermediate_->Sync();
    if (!synced.ok()) {
      STRUCTURA_LOG(kWarning)
          << "intermediate log sync failed: " << synced.ToString();
    }
  }
  return Status::OK();
}

Result<IntegrityCounters> System::ScrubStorage() {
  TRACE_SPAN("system.scrub");
  static obs::Counter* scrubs =
      obs::MetricsRegistry::Default().GetCounter("integrity.scrubs");
  // Per-store passes, so the health signals can tell WAL trouble from
  // segment-log trouble.
  IntegrityCounters db_counters;
  IntegrityCounters segment_counters;
  IntegrityCounters snapshot_counters;
  STRUCTURA_RETURN_IF_ERROR(db_->Scrub(&db_counters));
  if (intermediate_ != nullptr) {
    STRUCTURA_RETURN_IF_ERROR(intermediate_->Scrub(&segment_counters));
  }
  STRUCTURA_RETURN_IF_ERROR(snapshots_.Scrub(&snapshot_counters));
  IntegrityCounters counters = db_counters;
  counters.Merge(segment_counters);
  counters.Merge(snapshot_counters);
  {
    std::lock_guard<std::mutex> lock(scrub_mutex_);
    last_scrub_db_ = db_counters;
    last_scrub_segments_ = segment_counters;
    last_scrub_snapshots_ = snapshot_counters;
    last_scrub_ = counters;
    scrubbed_ = true;
  }
  scrubs->Increment();
  last_scrub_nanos_.store(clock()->NowNanos());
  obs::RecordEvent(obs::EventCategory::kWatchdog,
                   obs::EventCode::kWatchdogScrub,
                   counters.AnyDamage() ? 1 : 0, counters.corrupt_records, 0,
                   "scrub storage");
  PublishIntegrityGauges("integrity.scrub", counters);
  return counters;
}

std::vector<query::SearchHit> System::KeywordSearch(const std::string& q,
                                                    size_t k) const {
  return keyword_index_.Search(q, k);
}

Result<std::vector<query::SearchHit>> System::KeywordSearch(
    const std::string& q, size_t k, const Interrupt& intr) const {
  return keyword_index_.Search(q, k, intr, ctx_.exec);
}

std::vector<query::QueryForm> System::SuggestQueries(
    const std::string& keywords) const {
  return translator_.Translate(keywords);
}

Result<std::vector<query::QueryForm>> System::SuggestQueries(
    const std::string& keywords, const Interrupt& intr) const {
  return translator_.Translate(keywords, intr);
}

Result<std::vector<query::SearchHit>> System::HybridSearch(
    const std::string& keywords,
    const std::vector<query::Condition>& conditions, size_t k,
    const Interrupt& intr) const {
  const query::Relation* rel = View(fact_view_);
  if (rel == nullptr) {
    return Status::FailedPrecondition(
        "no fact view bound (call BuildBeliefsFromView)");
  }
  query::HybridQuery hq;
  hq.keywords = keywords;
  hq.structured = conditions;
  return query::HybridSearch(keyword_index_, *rel, hq, k, intr, ctx_.exec);
}

Result<query::HybridAnswer> System::HybridSearchDegraded(
    const std::string& keywords,
    const std::vector<query::Condition>& conditions, size_t k,
    const Interrupt& intr) const {
  const query::Relation* rel = View(fact_view_);
  query::HybridFallback fb;
  if (rel == nullptr) {
    fb.structured_available = false;
    fb.structured_reason = "no fact view bound";
  }
  // Health-driven rungs: a side whose subsystem is not healthy is
  // skipped up front instead of discovered broken mid-query.
  if (serve::HealthState s = health_.StateOf("query.structured");
      s != serve::HealthState::kHealthy) {
    fb.structured_available = false;
    fb.structured_reason = std::string("query.structured ") +
                           serve::HealthStateName(s) + ": " +
                           health_.ReasonOf("query.structured");
  }
  if (serve::HealthState s = health_.StateOf("query.keyword");
      s != serve::HealthState::kHealthy) {
    fb.keyword_available = false;
    fb.keyword_reason = std::string("query.keyword ") +
                        serve::HealthStateName(s) + ": " +
                        health_.ReasonOf("query.keyword");
  }
  query::HybridQuery hq;
  hq.keywords = keywords;
  hq.structured = conditions;
  static const query::Relation kEmptyFacts;
  return query::HybridSearchDegradable(
      keyword_index_, rel != nullptr ? *rel : kEmptyFacts, hq, k, fb, intr,
      ctx_.exec);
}

Result<query::Relation> System::RunForm(const query::QueryForm& form,
                                        const Interrupt& intr) const {
  const query::Relation* rel = View(fact_view_);
  if (rel == nullptr) {
    return Status::FailedPrecondition(
        "no fact view bound (call BuildBeliefsFromView)");
  }
  // Forms run over exactly one input — the bound fact view — so their
  // cache entries carry a single epoch. The fingerprint is the rendered
  // SQL: two forms with identical SQL are the same query.
  bool use_cache =
      query_cache_ != nullptr && (!ctx_.cache_gate || ctx_.cache_gate());
  std::string fingerprint;
  query::EpochVector at;
  if (use_cache) {
    fingerprint = "form:" + fact_view_ + ":" + form.query.ToSql();
    at = query_cache_->epochs().Snapshot({"view:" + fact_view_});
    if (std::optional<query::Relation> hit =
            query_cache_->Lookup(fingerprint)) {
      return std::move(*hit);
    }
  }
  int64_t started_nanos = clock()->NowNanos();
  STRUCTURA_ASSIGN_OR_RETURN(
      query::Relation out,
      query::ExecuteStructuredQuery(form.query, *rel, intr, ctx_.exec));
  if (use_cache) {
    obs::CostVector cost;
    cost.v[static_cast<size_t>(obs::CostDim::kCpuNanos)] =
        static_cast<uint64_t>(
            std::max<int64_t>(0, clock()->NowNanos() - started_nanos));
    cost.v[static_cast<size_t>(obs::CostDim::kRowsScanned)] = rel->size();
    query_cache_->Insert(fingerprint, std::move(at), out, cost);
  }
  return out;
}

}  // namespace structura::core
