#include "core/schema_unify.h"

#include <algorithm>
#include <set>

namespace structura::core {
namespace {

constexpr size_t kSampleCap = 40;

}  // namespace

Result<UnifyResult> UnifySchema(
    const query::Relation& facts,
    const std::vector<std::string>& canonical_attributes,
    const ii::SchemaMatchOptions& options) {
  int attr_col = facts.ColumnIndex("attribute");
  int value_col = facts.ColumnIndex("value");
  if (attr_col < 0 || value_col < 0) {
    return Status::InvalidArgument(
        "fact view lacks attribute/value columns");
  }
  // Profile every attribute by up to kSampleCap values.
  std::map<std::string, ii::AttributeProfile> profiles;
  for (const query::Row& row : facts.rows()) {
    const std::string attr =
        row[static_cast<size_t>(attr_col)].ToString();
    ii::AttributeProfile& p = profiles[attr];
    if (p.name.empty()) p.name = attr;
    if (p.sample_values.size() < kSampleCap) {
      p.sample_values.push_back(
          row[static_cast<size_t>(value_col)].ToString());
    }
  }
  std::set<std::string> canonical(canonical_attributes.begin(),
                                  canonical_attributes.end());
  std::vector<ii::AttributeProfile> candidates, targets;
  for (const auto& [attr, profile] : profiles) {
    if (canonical.count(attr) > 0) {
      targets.push_back(profile);
    } else {
      candidates.push_back(profile);
    }
  }

  UnifyResult result;
  result.matches = ii::MatchSchemas(candidates, targets, options);
  for (const ii::SchemaMatch& m : result.matches) {
    result.renames[candidates[m.a_index].name] = targets[m.b_index].name;
  }

  result.unified = query::Relation(facts.columns());
  for (const query::Row& row : facts.rows()) {
    query::Row rewritten = row;
    const std::string attr =
        row[static_cast<size_t>(attr_col)].ToString();
    auto it = result.renames.find(attr);
    if (it != result.renames.end()) {
      rewritten[static_cast<size_t>(attr_col)] =
          query::Value::Str(it->second);
    }
    STRUCTURA_RETURN_IF_ERROR(result.unified.Append(std::move(rewritten)));
  }
  return result;
}

}  // namespace structura::core
