#ifndef STRUCTURA_CORE_EVAL_H_
#define STRUCTURA_CORE_EVAL_H_

#include <string>
#include <vector>

#include "corpus/records.h"
#include "ie/fact.h"
#include "uncertainty/confidence.h"

namespace structura::core {

/// Standard precision/recall/F1 triple.
struct Score {
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  double precision() const {
    size_t denom = true_positives + false_positives;
    return denom == 0 ? 0 : static_cast<double>(true_positives) / denom;
  }
  double recall() const {
    size_t denom = true_positives + false_negatives;
    return denom == 0 ? 0 : static_cast<double>(true_positives) / denom;
  }
  double f1() const {
    double p = precision(), r = recall();
    return p + r == 0 ? 0 : 2 * p * r / (p + r);
  }
  std::string ToString() const;
};

/// Normalizes a value for comparison: trims, strips thousands commas.
std::string NormalizeValue(const std::string& value);

/// Scores extracted facts against ground truth on (doc, attribute,
/// normalized value). Duplicate predictions of the same triple count
/// once. `attribute_filter` (LIKE pattern, empty = all) restricts which
/// truth attributes are in scope — used by incremental experiments.
Score ScoreExtraction(const ie::FactSet& facts,
                      const corpus::GroundTruth& truth,
                      const std::string& attribute_filter = "");

/// Scores top-alternative beliefs against ground truth on (subject,
/// attribute, normalized value), where truth subjects are canonical
/// entity names.
Score ScoreBeliefs(const std::vector<uncertainty::AttributeBelief>& beliefs,
                   const corpus::GroundTruth& truth);

/// Pairwise clustering metrics for entity resolution: over all mention
/// pairs, a pair is positive when both refer to the same truth entity.
Score ScoreClustering(const std::vector<corpus::EntityId>& truth_entities,
                      const std::vector<size_t>& cluster_of);

}  // namespace structura::core

#endif  // STRUCTURA_CORE_EVAL_H_
