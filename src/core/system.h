#ifndef STRUCTURA_CORE_SYSTEM_H_
#define STRUCTURA_CORE_SYSTEM_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/integrity.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "debugger/semantic_debugger.h"
#include "hi/aggregation.h"
#include "hi/simulated_user.h"
#include "ie/extractor.h"
#include "ii/schema_matcher.h"
#include "lang/executor.h"
#include "obs/flight_recorder.h"
#include "obs/incident.h"
#include "provenance/lineage.h"
#include "query/hybrid.h"
#include "query/keyword_index.h"
#include "query/result_cache.h"
#include "query/standing_query.h"
#include "query/translator.h"
#include "rdbms/database.h"
#include "serve/counters.h"
#include "serve/health.h"
#include "storage/segment_store.h"
#include "storage/snapshot_store.h"
#include "uncertainty/confidence.h"
#include "user/accounts.h"

namespace structura::core {

/// The end-to-end system of Figure 1, wired together: snapshot storage
/// for crawls, the SDL processing layer (IE + II + HI), uncertainty +
/// provenance over derived facts, the semantic debugger, a transactional
/// final store, and the user layer (keyword search, structured queries,
/// keyword->structured translation, accounts/reputation).
///
/// The DGE loop it implements (Section 3.2):
///   IngestCrawl -> RunProgram (EXTRACT/RESOLVE) -> BuildBeliefsFromView
///   -> RunFeedbackRound* -> MaterializeBeliefs -> exploitation
/// and exploitation can restart generation (incremental, best-effort).
class System {
 public:
  struct Options {
    /// Directory for the WAL/checkpoint of the final store. Empty =
    /// fully in-memory (still transactional, not durable).
    std::string workspace;
    /// I/O environment for every durable store (WAL, checkpoint,
    /// intermediate segment log, snapshot journal). nullptr =
    /// Env::Default(); tests pass a FaultInjectingEnv to exercise
    /// syscall-level failures.
    Env* env = nullptr;
    /// Time source for every timer in the system (watchdog interval
    /// and cooldowns, WAL group-commit window). nullptr = real time;
    /// crash-simulation tests pass a SimulatedClock so runs are
    /// deterministic and sweeps need not wait out real intervals.
    Clock* clock = nullptr;
    bool optimize_plans = true;
    uint64_t seed = 42;
    /// Directory automatic incident bundles are written under (one
    /// subdirectory per incident). Empty = fall back to the
    /// STRUCTURA_ARTIFACT_DIR environment variable; when that is unset
    /// too, incident dumps are disabled.
    std::string incident_dir;
    /// Minimum spacing between incident bundles, measured on `clock`:
    /// a flapping trigger produces one bundle per window plus a
    /// suppressed count, never a dump storm.
    uint64_t incident_cooldown_ms = 1000;
    /// Worker threads for morsel-parallel query execution. 1 = serial
    /// (no pool is created). Results are byte-identical across any
    /// value — parallelism is a scheduling choice, never a semantic
    /// one (see ExecutorOptions).
    size_t query_parallelism = 1;
    /// Rows per morsel; part of the determinism contract (aggregate
    /// merge boundaries follow morsel boundaries on every path).
    size_t query_morsel_rows = 1024;
    /// Result-cache capacity. Either knob at 0 disables caching
    /// entirely (no cache object is created).
    size_t query_cache_entries = 1024;
    size_t query_cache_bytes = 8u << 20;
    /// Cost-aware admission: results whose measured CostVector score
    /// falls below this are not worth caching. 0 = admit everything.
    uint64_t query_cache_min_cost = 0;
  };

  static Result<std::unique_ptr<System>> Create(Options options);

  System(const System&) = delete;
  System& operator=(const System&) = delete;
  /// Stops the watchdog (if running) before members are destroyed.
  ~System();

  // --- Data generation -------------------------------------------------

  /// Stores a crawl into the versioned snapshot store and makes it the
  /// working document set (rebuilding the keyword index).
  Status IngestCrawl(const text::DocumentCollection& docs);

  const text::DocumentCollection& documents() const { return docs_; }

  /// Registers an extractor under an SDL name. `attribute_pattern` is the
  /// LIKE pattern of attributes it can produce ("temp_%", "%"...); it
  /// feeds the optimizer. The system takes ownership.
  void RegisterExtractor(std::string name, ie::ExtractorPtr extractor,
                         std::string attribute_pattern);

  /// Registers the standard corpus extractor suite and the built-in
  /// matchers (name, jaro_winkler, levenshtein).
  void RegisterStandardOperators();

  /// Runs an SDL program (CREATE VIEW / SELECT / EXPLAIN ...).
  Result<std::vector<lang::Interpreter::StatementResult>> RunProgram(
      const std::string& sdl);

  /// Runs a program and returns its final relation.
  Result<query::Relation> Query(const std::string& sdl);

  /// A materialized view by name, or nullptr.
  const query::Relation* View(const std::string& name) const;

  // --- Uncertainty, provenance, debugging ------------------------------

  /// Folds a fact view (columns subject/attribute/value/confidence; if an
  /// "entity" column exists it supersedes subject) into beliefs, wiring
  /// provenance from documents through facts to beliefs.
  Status BuildBeliefsFromView(const std::string& view);

  const std::vector<uncertainty::AttributeBelief>& beliefs() const {
    return beliefs_;
  }

  /// Derivation explanation for a belief (Part V's "explanation").
  Result<std::string> Explain(const std::string& subject,
                              const std::string& attribute) const;

  /// Learns semantic constraints from the current facts and returns the
  /// violations among them (Part VI).
  std::vector<debugger::Violation> AuditFacts();

  /// Unifies a view's attribute vocabulary against `canonical_attributes`
  /// (schema matching over names + instances), rewriting the view in
  /// place. Returns the applied renames.
  Result<std::map<std::string, std::string>> UnifyViewSchema(
      const std::string& view,
      const std::vector<std::string>& canonical_attributes,
      const ii::SchemaMatchOptions& options);

  // --- Human intervention ----------------------------------------------

  /// Ground-truth oracle used to *simulate* what humans know; returns the
  /// correct value for (subject, attribute) or nullopt when unknown.
  using Oracle = std::function<std::optional<std::string>(
      const std::string& subject, const std::string& attribute)>;

  enum class Aggregation { kMajority, kWeighted, kDawidSkene };

  struct FeedbackOptions {
    size_t budget = 50;            // questions asked this round
    size_t answers_per_task = 5;   // crowd answers gathered per question
    Aggregation aggregation = Aggregation::kMajority;
  };

  /// One mass-collaboration round: picks the most uncertain beliefs,
  /// generates tasks, collects crowd answers, aggregates, applies the
  /// consensus to the beliefs, and updates user reputations. Returns the
  /// number of tasks asked.
  Result<size_t> RunFeedbackRound(const Oracle& oracle,
                                  std::vector<hi::SimulatedUser>* crowd,
                                  const FeedbackOptions& options);

  // --- Final structured store ------------------------------------------

  /// Writes the top alternative of every belief into an rdbms table
  /// (subject, attribute, value, confidence) in one transaction,
  /// recording tuple provenance. Creates the table if needed.
  Status MaterializeBeliefs(const std::string& table);

  rdbms::Database* database() { return db_.get(); }

  /// Append-only log of materialized belief tuples — the paper's
  /// sequential "intermediate structured data" device. Null for an
  /// in-memory (workspace-less) system.
  storage::SegmentStore* intermediate_store() { return intermediate_.get(); }

  /// Re-reads and re-verifies every byte of persistent storage — the
  /// final store's checkpoint and WAL, the intermediate segment log, and
  /// every snapshot version — and returns what it found. The result is
  /// also remembered and surfaced in StatusReport().
  Result<IntegrityCounters> ScrubStorage();

  // --- Health & self-healing -------------------------------------------

  /// True while any durable write sink is latched failed (WAL,
  /// intermediate segment log, or snapshot journal): the system is in
  /// read-only brownout — reads keep serving, writes are refused with
  /// kUnavailable until the watchdog (or an explicit HealStorage call)
  /// repairs the failed sinks. Always false for an in-memory system.
  bool ReadOnly() const;
  /// Why ReadOnly() is true (empty string otherwise).
  std::string ReadOnlyReason() const;

  /// Repairs failed durable sinks after the underlying disk recovers:
  /// probes the workspace with a real write+fsync first (a dead disk
  /// returns its error and heals nothing), then checkpoints the
  /// database (giving the WAL a fresh handle), rolls the intermediate
  /// log to a fresh segment, and rewrites the snapshot journal from
  /// memory. Idempotent; the watchdog calls this automatically. Safe
  /// under live transactional traffic: the heal checkpoint quiesces
  /// writers itself (Database::Checkpoint takes shared table locks), so
  /// it cannot persist another transaction's uncommitted rows. Snapshot
  /// ingest, as ever, must not race the journal rewrite.
  Status HealStorage();

  /// The system's health ledger. Built-in signals (registered at
  /// Create): `storage.wal` and `storage.segments` from recovery
  /// reports + the latest per-store scrub, `storage.disk` from the I/O
  /// environment's failure ledger plus a live probe write (critical
  /// while the disk is unwritable or a sink is pending heal — the
  /// serve layer keys read-only brownout off it), `ie` from
  /// extraction-fault and quarantine telemetry. Serving components add their own
  /// (Frontend tags operator breakers into `query.*` / `serve`). The
  /// model lives as long as the System; registrants must detach before
  /// the System is destroyed.
  serve::HealthModel& health() { return health_; }
  const serve::HealthModel& health() const { return health_; }

  struct WatchdogOptions {
    /// Health evaluation cadence.
    uint64_t interval_ms = 50;
    /// Minimum spacing between automatic scrubs, so a persistently
    /// damaged store doesn't turn the watchdog into a scrub loop.
    uint64_t scrub_cooldown_ms = 500;
    /// When true, an unhealthy storage signal triggers ScrubStorage()
    /// — re-verifying (and thereby re-judging) the stores, which
    /// promotes them back to healthy once the damage is repaired.
    /// Assumes ingest is quiesced while the watchdog runs (snapshot
    /// appends are not locked against the scrubber).
    bool auto_scrub = true;
    /// When true, an unhealthy `storage.disk` signal triggers
    /// HealStorage() — probe the disk, and once it accepts writes
    /// again, give every latched-failed sink a fresh handle. Paired
    /// with its own cooldown so a still-dead disk is probed, not
    /// hammered.
    bool auto_heal = true;
    uint64_t heal_cooldown_ms = 200;
    /// When true (and the system has an incident directory), the
    /// watchdog dumps an incident bundle when: overall health demotes
    /// to critical, the system enters read-only brownout, breakers
    /// flap (>= breaker_flap_threshold open transitions across
    /// consecutive non-quiet ticks), or a request crosses the trace
    /// layer's slow-request threshold. Bundles are rate-limited by
    /// Options::incident_cooldown_ms.
    bool auto_incident = true;
    uint32_t breaker_flap_threshold = 3;
  };

  /// Starts the self-healing watchdog: a thread that evaluates the
  /// health model every `interval_ms`, auto-scrubs storage when its
  /// signals report trouble (with cooldown), and thereby re-probes
  /// degraded subsystems back toward healthy. Idempotent (restarts
  /// with the new options).
  void StartWatchdog(WatchdogOptions options);
  void StartWatchdog() { StartWatchdog(WatchdogOptions{}); }

  /// Stops and joins the watchdog. Safe when not running.
  void StopWatchdog();

  bool WatchdogRunning() const { return watchdog_running_.load(); }
  /// Health evaluations the watchdog has performed.
  uint64_t WatchdogTicks() const { return watchdog_ticks_.load(); }
  /// Automatic scrubs the watchdog has triggered.
  uint64_t WatchdogAutoScrubs() const { return watchdog_scrubs_.load(); }
  /// Automatic heal attempts the watchdog has triggered.
  uint64_t WatchdogAutoHeals() const { return watchdog_heals_.load(); }

  /// Machine-readable health: the model's JSON plus a watchdog block.
  /// {"health":{…},"watchdog":{"running":…,"ticks":…,"auto_scrubs":…,
  /// "auto_heals":…}}
  std::string HealthJson() const;

  // --- Exploitation -----------------------------------------------------

  std::vector<query::SearchHit> KeywordSearch(const std::string& q,
                                              size_t k) const;

  /// Interruptible keyword search: returns kDeadlineExceeded /
  /// kCancelled when `intr` fires mid-scoring.
  Result<std::vector<query::SearchHit>> KeywordSearch(
      const std::string& q, size_t k, const Interrupt& intr) const;

  /// Candidate structured-query forms for a keyword query, over the view
  /// last passed to BuildBeliefsFromView.
  std::vector<query::QueryForm> SuggestQueries(
      const std::string& keywords) const;

  /// Interruptible translation.
  Result<std::vector<query::QueryForm>> SuggestQueries(
      const std::string& keywords, const Interrupt& intr) const;

  /// Executes a suggested form against its fact view. `intr` is polled
  /// through the evaluation pipeline.
  Result<query::Relation> RunForm(const query::QueryForm& form,
                                  const Interrupt& intr = Interrupt{}) const;

  /// Hybrid DB+IR search: BM25 relevance restricted to documents whose
  /// extracted facts satisfy the structured conditions (evaluated over
  /// the view last passed to BuildBeliefsFromView). `intr` is polled
  /// through both sides.
  Result<std::vector<query::SearchHit>> HybridSearch(
      const std::string& keywords,
      const std::vector<query::Condition>& conditions, size_t k,
      const Interrupt& intr = Interrupt{}) const;

  /// HybridSearch through the fallback ladder: consults the health
  /// model (`query.structured` / `query.keyword`) to skip an unhealthy
  /// side up front, and degrades at runtime when a side fails with
  /// infrastructure trouble. A missing fact view no longer refuses the
  /// query — it degrades to keyword-only. The answer carries the
  /// explicit degraded flag + reason; both sides down → kUnavailable.
  Result<query::HybridAnswer> HybridSearchDegraded(
      const std::string& keywords,
      const std::vector<query::Condition>& conditions, size_t k,
      const Interrupt& intr = Interrupt{}) const;

  /// Registers a standing query (the "monitoring" exploitation mode).
  Status Watch(query::StandingQueryRegistry::Spec spec);

  /// Re-evaluates every standing query bound to `view`; returns raised
  /// alerts. Call after CREATE VIEW / REFRESH VIEW runs.
  Result<std::vector<query::Alert>> CheckWatches(const std::string& view);

  /// One-page operational summary: documents, snapshot store, views,
  /// beliefs, lineage, users, monitor counters, quarantined operators,
  /// serving counters (when a provider is set), storage-integrity
  /// counters (recovery findings and the last scrub), fault-injection
  /// counters, and the process metrics registry (rendered compactly from
  /// the same snapshot MetricsPrometheus/MetricsJson expose).
  std::string StatusReport() const;

  /// Prometheus text exposition of the process metrics registry. Both
  /// formats and StatusReport() render from one registry snapshot type,
  /// so they always agree on names and values.
  static std::string MetricsPrometheus();

  /// JSON exposition of the process metrics registry.
  static std::string MetricsJson();

  /// JSON top-K expensive requests: per-request CostVector rollups with
  /// their span trees rendered lazily from the trace rings.
  static std::string ExpensiveRequestsJson();

  /// Incident-bundle manager, or nullptr when dumps are disabled (no
  /// incident_dir and no STRUCTURA_ARTIFACT_DIR). Tests use it to
  /// trigger a bundle explicitly and to read dump/suppression counts.
  obs::IncidentManager* incidents() { return incidents_.get(); }

  /// Wires a serving frontend's counters into StatusReport(). The
  /// provider is called on each report, so the section always reflects
  /// live values; pass nullptr to detach (e.g. before the frontend is
  /// destroyed).
  using ServingStatsProvider = std::function<serve::ServingCounters()>;
  void SetServingStatsProvider(ServingStatsProvider provider) {
    serving_stats_ = std::move(provider);
  }

  /// Extractors quarantined after exhausting their error budget during
  /// program execution (graceful degradation; see ExecutionContext).
  const std::set<std::string>& QuarantinedExtractors() const {
    return ctx_.quarantined_extractors;
  }

  /// The epoch-versioned query result cache, or nullptr when disabled
  /// (query_cache_entries or query_cache_bytes = 0). Tests read stats
  /// and epochs through it; the interpreter consults it via the
  /// execution context.
  query::QueryResultCache* result_cache() const { return query_cache_.get(); }

  // --- Component access -------------------------------------------------

  lang::ExecutionContext& context() { return ctx_; }
  storage::SnapshotStore& snapshots() { return snapshots_; }
  provenance::LineageGraph& lineage() { return lineage_; }
  user::UserDirectory& users() { return users_; }
  debugger::SystemMonitor& monitor() { return monitor_; }
  debugger::SemanticDebugger& semantic_debugger() { return debugger_; }

 private:
  explicit System(Options options);

  Env* env() const {
    return options_.env != nullptr ? options_.env : Env::Default();
  }
  Clock* clock() const { return Clock::OrReal(options_.clock); }

  /// Registers the built-in storage/ie signals into health_ (called
  /// from Create, after the stores are open).
  void RegisterBuiltinHealthSignals();
  /// The watchdog thread body.
  void WatchdogLoop();
  /// Dumps an incident bundle for `trigger` if incidents are enabled
  /// (cooldown applied by the manager). Watchdog-thread only.
  void MaybeIncident(const char* trigger);

  Options options_;
  text::DocumentCollection docs_;
  storage::SnapshotStore snapshots_;
  query::KeywordIndex keyword_index_;
  /// Per-page text hash from the previous crawl, for change detection.
  std::map<text::DocId, uint64_t> last_text_hash_;

  std::vector<ie::ExtractorPtr> owned_extractors_;
  std::vector<std::unique_ptr<ii::SimilarityMatcher>> owned_matchers_;
  lang::ExecutionContext ctx_;

  std::unique_ptr<rdbms::Database> db_;
  std::unique_ptr<storage::SegmentStore> intermediate_;
  /// Morsel-execution worker pool (null when query_parallelism <= 1)
  /// and the epoch-versioned result cache (null when disabled).
  /// ~System detaches the database commit listener before these die.
  std::unique_ptr<ThreadPool> query_pool_;
  std::unique_ptr<query::QueryResultCache> query_cache_;
  /// Guards the scrub results below: StatusReport() (any thread) and
  /// the watchdog's auto-scrub both touch them.
  mutable std::mutex scrub_mutex_;
  IntegrityCounters last_scrub_;
  /// Per-store views of the last scrub, so the health signals can tell
  /// WAL trouble from segment-log trouble.
  IntegrityCounters last_scrub_db_;
  IntegrityCounters last_scrub_segments_;
  IntegrityCounters last_scrub_snapshots_;
  bool scrubbed_ = false;

  /// Health ledger + self-healing watchdog. health_ must outlive every
  /// registrant: the built-in signals detach-never (they die with the
  /// System), external ones (Frontend) must detach before the System
  /// is destroyed. ~System stops the watchdog before any member dies.
  serve::HealthModel health_;
  std::atomic<size_t> extractor_count_{0};
  /// Guarded by watchdog_mutex_: StartWatchdog() reassigns it on a
  /// restart while HealthJson()/StatusReport() read it from other
  /// threads. The loop itself reads it unlocked — safe, because
  /// StartWatchdog joins the old thread before assigning and spawns the
  /// new one after (thread creation provides the happens-before edge).
  WatchdogOptions watchdog_options_;
  mutable std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<bool> watchdog_running_{false};
  std::atomic<uint64_t> watchdog_ticks_{0};
  std::atomic<uint64_t> watchdog_scrubs_{0};
  std::atomic<uint64_t> watchdog_heals_{0};
  /// Clock stamps of the last scrub/heal (any caller, not just the
  /// watchdog); -1 = never. StatusReport() surfaces their ages.
  std::atomic<int64_t> last_scrub_nanos_{-1};
  std::atomic<int64_t> last_heal_nanos_{-1};
  /// Automatic incident bundles (null when disabled). Sections
  /// registered at Create() capture `this`; ~System stops the watchdog
  /// (the only trigger source) before members are destroyed.
  std::unique_ptr<obs::IncidentManager> incidents_;
  std::thread watchdog_;
  std::vector<uncertainty::AttributeBelief> beliefs_;
  ie::FactSet current_facts_;
  std::string fact_view_;

  provenance::LineageGraph lineage_;
  user::UserDirectory users_;
  debugger::SemanticDebugger debugger_;
  debugger::SystemMonitor monitor_;
  query::KeywordTranslator translator_;
  query::StandingQueryRegistry watches_;
  ServingStatsProvider serving_stats_;
  uint64_t next_task_id_ = 1;
};

}  // namespace structura::core

#endif  // STRUCTURA_CORE_SYSTEM_H_
