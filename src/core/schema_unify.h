#ifndef STRUCTURA_CORE_SCHEMA_UNIFY_H_
#define STRUCTURA_CORE_SCHEMA_UNIFY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ii/schema_matcher.h"
#include "query/relation.h"

namespace structura::core {

/// Result of unifying a fact view's attribute vocabulary.
struct UnifyResult {
  /// source attribute -> canonical attribute (e.g. "inhabitants" ->
  /// "population").
  std::map<std::string, std::string> renames;
  /// The fact view with attributes rewritten.
  query::Relation unified;
  /// The underlying schema matches, for inspection/HI review.
  std::vector<ii::SchemaMatch> matches;
};

/// Repairs semantic heterogeneity across sources (the paper's
/// location/address example): attributes outside `canonical_attributes`
/// are profiled by their sampled values and matched against the
/// canonical ones (name + instance similarity); confident matches are
/// renamed. `facts` must have "attribute" and "value" columns.
Result<UnifyResult> UnifySchema(
    const query::Relation& facts,
    const std::vector<std::string>& canonical_attributes,
    const ii::SchemaMatchOptions& options);

}  // namespace structura::core

#endif  // STRUCTURA_CORE_SCHEMA_UNIFY_H_
