#include "common/cancellation.h"

namespace structura {

Status Interrupt::Check() const {
  if (token.cancelled()) {
    return Status::Cancelled("request cancelled");
  }
  if (deadline.Expired()) {
    return Status::DeadlineExceeded("deadline exceeded");
  }
  return Status::OK();
}

}  // namespace structura
