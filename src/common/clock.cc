#include "common/clock.h"

#include <chrono>
#include <thread>

namespace structura {

namespace {

class RealClock : public Clock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepForNanos(int64_t nanos) override {
    if (nanos <= 0) return;
    std::this_thread::sleep_for(std::chrono::nanoseconds(nanos));
  }

  std::cv_status WaitFor(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         int64_t nanos) override {
    if (nanos <= 0) return std::cv_status::timeout;
    return cv.wait_for(lock, std::chrono::nanoseconds(nanos));
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* real = new RealClock();
  return real;
}

SimulatedClock::SimulatedClock(Options options)
    : options_(options),
      // Start well above zero so "now - large_budget" style arithmetic
      // in client code never goes negative.
      now_(int64_t{1} << 30) {}

void SimulatedClock::RaiseTo(int64_t target) {
  int64_t cur = now_.load(std::memory_order_relaxed);
  while (cur < target &&
         !now_.compare_exchange_weak(cur, target, std::memory_order_acq_rel)) {
  }
  advanced_.notify_all();
}

void SimulatedClock::AdvanceNanos(int64_t nanos) {
  if (nanos <= 0) return;
  // Serialize external advances so now_ moves by exactly the sum of
  // the requested steps.
  std::lock_guard<std::mutex> guard(mutex_);
  now_.fetch_add(nanos, std::memory_order_acq_rel);
  advanced_.notify_all();
}

void SimulatedClock::SleepForNanos(int64_t nanos) {
  if (nanos <= 0) return;
  int64_t target = NowNanos() + nanos;
  if (options_.auto_advance) {
    RaiseTo(target);
    // Give other runnable threads a chance, mimicking a real sleep's
    // scheduling effect without its latency.
    std::this_thread::yield();
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  advanced_.wait(lock, [&] { return NowNanos() >= target; });
}

std::cv_status SimulatedClock::WaitFor(std::condition_variable& cv,
                                       std::unique_lock<std::mutex>& lock,
                                       int64_t nanos) {
  if (nanos <= 0) return std::cv_status::timeout;
  int64_t target = NowNanos() + nanos;
  if (options_.auto_advance) {
    // Short real wait first so a notification racing with this wait is
    // observed (the notifier holds/held `lock`'s mutex, same as with a
    // real cv); then declare the simulated timeout elapsed.
    std::cv_status real = cv.wait_for(
        lock, std::chrono::nanoseconds(options_.real_wait_slice_nanos));
    RaiseTo(target);
    return real == std::cv_status::no_timeout ? std::cv_status::no_timeout
                                              : std::cv_status::timeout;
  }
  // Manual mode: one bounded real-time slice, handed back to the
  // caller as a (possibly spurious) wakeup. Returning every slice —
  // rather than looping here until notified — lets predicate loops
  // re-check under the held lock, so a notify_all that fires between
  // slices (when this thread is NOT parked in wait_for) can never be
  // lost. Timeout is reported only once simulated time really passed
  // the target.
  std::cv_status real = cv.wait_for(lock, std::chrono::milliseconds(1));
  if (real == std::cv_status::no_timeout) return std::cv_status::no_timeout;
  return NowNanos() >= target ? std::cv_status::timeout
                              : std::cv_status::no_timeout;
}

}  // namespace structura
