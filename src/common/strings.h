#ifndef STRUCTURA_COMMON_STRINGS_H_
#define STRUCTURA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace structura {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces and trimming whitespace.
std::vector<std::string> SplitAndTrim(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if `s` parses fully as a (possibly signed) decimal number.
bool IsNumber(std::string_view s);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses an int64; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace structura

#endif  // STRUCTURA_COMMON_STRINGS_H_
