#ifndef STRUCTURA_COMMON_CRC32C_H_
#define STRUCTURA_COMMON_CRC32C_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace structura {
namespace internal_crc32c {

/// Byte-at-a-time table for the Castagnoli polynomial (reflected
/// 0x82F63B78), built at compile time.
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace internal_crc32c

/// CRC32C (Castagnoli) over `data`. Guarantees detection of any single
/// flipped bit and any burst error up to 32 bits, which is why storage
/// headers use it instead of FNV (FNV has no such guarantee). Chainable:
/// `Crc32c(b, Crc32c(a)) == Crc32c(a + b)`. Stable across platforms, so
/// it is safe to persist.
inline uint32_t Crc32c(std::string_view data, uint32_t crc = 0) {
  crc = ~crc;
  for (unsigned char c : data) {
    crc = internal_crc32c::kTable[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace structura

#endif  // STRUCTURA_COMMON_CRC32C_H_
