#include "common/env.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"

namespace structura {
namespace {

/// Maps an errno from a failed storage syscall to a Status: a full disk
/// is kResourceExhausted (retryable once space is freed), everything
/// else is kIoError.
Status ErrnoStatus(const char* what, const std::string& path, int err) {
  std::string msg = std::string(what) + " " + path + ": " +
                    std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) {
    return Status::ResourceExhausted(std::move(msg));
  }
  return Status::IoError(std::move(msg));
}

/// Converts a fired failpoint status into an injected i/o error,
/// keeping the failpoint's own message (site name + hit count) for
/// test assertions.
Status InjectedIo(const Status& fired) {
  return Status::IoError("injected i/o error: " + fired.message());
}

}  // namespace

// ---------------------------------------------------------------------
// WritableFile sticky wrapper
// ---------------------------------------------------------------------

template <typename Op>
Status WritableFile::Run(Op op) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latched_) return sticky_;
  Status s = op();
  if (!s.ok()) {
    // First failure: latch it. Never retry past a failed write/sync —
    // the kernel may have dropped the dirty pages, so a later "OK"
    // would be a lie (fsyncgate).
    latched_ = true;
    sticky_ = s;
    if (env_ != nullptr) env_->ReportIoFailure(path_, s);
  }
  return s;
}

Status WritableFile::Append(std::string_view data) {
  return Run([&] { return DoAppend(data); });
}

Status WritableFile::Flush() {
  return Run([&] { return DoFlush(); });
}

Status WritableFile::Sync() {
  return Run([&] { return DoSync(); });
}

Status WritableFile::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latched_) return sticky_;
  Status s = DoFlush();
  if (s.ok()) s = DoClose();
  // Closed files are failed files as far as callers go: later ops get
  // an error instead of writing through a dead descriptor.
  latched_ = true;
  if (!s.ok()) {
    sticky_ = s;
    if (env_ != nullptr) env_->ReportIoFailure(path_, s);
    return s;
  }
  sticky_ = Status::IoError("file closed: " + path_);
  return Status::OK();
}

bool WritableFile::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latched_;
}

Status WritableFile::sticky_status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sticky_;
}

// ---------------------------------------------------------------------
// PosixEnv
// ---------------------------------------------------------------------

namespace {

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::string path, Env* env, int fd)
      : WritableFile(std::move(path), env), fd_(fd) {}

  ~PosixWritableFile() override {
    // Best-effort descriptor cleanup; Close() is the checked path.
    if (fd_ >= 0) ::close(fd_);
  }

 protected:
  Status DoAppend(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path(), errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status DoFlush() override {
    return Status::OK();  // unbuffered: bytes are already with the OS
  }

  Status DoSync() override {
#if defined(__linux__)
    if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync", path(), errno);
#else
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path(), errno);
#endif
    return Status::OK();
  }

  Status DoClose() override {
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path(), errno);
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC;
    flags |= truncate ? O_TRUNC : O_APPEND;
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      Status s = ErrnoStatus("open", path, errno);
      ReportIoFailure(path, s);
      return s;
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(path, this, fd));
  }

  Status RenameFile(const std::string& from,
                    const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      Status s = ErrnoStatus("rename", from + " -> " + to, errno);
      ReportIoFailure(to, s);
      return s;
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      Status s = ErrnoStatus("open dir", dir, errno);
      ReportIoFailure(dir, s);
      return s;
    }
    int rc = ::fsync(fd);
    int err = errno;
    ::close(fd);
    // Some filesystems refuse fsync on a directory fd; that is the
    // platform's best effort, not a storage failure.
    if (rc != 0 && err != EINVAL && err != ENOTSUP) {
      Status s = ErrnoStatus("fsync dir", dir, err);
      ReportIoFailure(dir, s);
      return s;
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound("no file: " + path);
      return ErrnoStatus("unlink", path, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: process lifetime
  return env;
}

void Env::ReportIoFailure(const std::string& path, const Status& status) {
  io_failures_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  last_io_error_ = path + ": " + status.ToString();
}

std::string Env::last_io_error() const {
  std::lock_guard<std::mutex> lock(ledger_mutex_);
  return last_io_error_;
}

Status Env::ProbeWrite(const std::string& dir) {
  const std::string probe_path = dir + "/.disk.probe";
  STRUCTURA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             NewWritableFile(probe_path, /*truncate=*/true));
  STRUCTURA_RETURN_IF_ERROR(file->Append("structura disk probe\n"));
  STRUCTURA_RETURN_IF_ERROR(file->Sync());
  STRUCTURA_RETURN_IF_ERROR(file->Close());
  // Cleanup is best-effort: a probe file left behind is harmless.
  RemoveFile(probe_path);
  return Status::OK();
}

// ---------------------------------------------------------------------
// AtomicReplaceFile
// ---------------------------------------------------------------------

Status AtomicReplaceFile(Env* env, const std::string& path,
                         std::string_view contents,
                         const char* pre_rename_failpoint) {
  const std::string tmp = path + ".tmp";
  STRUCTURA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                             env->NewWritableFile(tmp, /*truncate=*/true));
  STRUCTURA_RETURN_IF_ERROR(file->Append(contents));
  if (pre_rename_failpoint != nullptr) {
    // A crash here leaves a complete-looking tmp file; because the
    // rename below never ran, the old file is still authoritative.
    STRUCTURA_FAILPOINT(pre_rename_failpoint);
  }
  STRUCTURA_RETURN_IF_ERROR(file->Sync());
  STRUCTURA_RETURN_IF_ERROR(file->Close());
  STRUCTURA_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  // The rename is durable only once the parent directory is synced.
  size_t slash = path.rfind('/');
  std::string parent = slash == std::string::npos ? std::string(".")
                                                  : path.substr(0, slash);
  return env->SyncDir(parent);
}

// ---------------------------------------------------------------------
// FaultInjectingEnv
// ---------------------------------------------------------------------

namespace {

class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::string path, Env* env,
                     std::unique_ptr<WritableFile> base)
      : WritableFile(std::move(path), env), base_(std::move(base)) {}

 protected:
  Status DoAppend(std::string_view data) override {
    if (Status fired = MaybeFail("env.write.enospc"); !fired.ok()) {
      return Status::ResourceExhausted("injected ENOSPC: " +
                                       fired.message());
    }
    if (Status fired = MaybeFail("env.write"); !fired.ok()) {
      return InjectedIo(fired);
    }
    if (Status fired = MaybeFail("env.write.short"); !fired.ok()) {
      // Power cut mid-write: a prefix reaches the file, then the
      // "device" dies. The sticky wrapper guarantees nothing is ever
      // appended after the torn bytes, so they stay the file's tail —
      // exactly what recovery-time torn-tail truncation expects.
      base_->Append(data.substr(0, data.size() / 2));
      return Status::IoError("injected power cut (short write): " +
                             fired.message());
    }
    return base_->Append(data);
  }

  Status DoFlush() override { return base_->Flush(); }

  Status DoSync() override {
    if (Status fired = MaybeFail("env.sync"); !fired.ok()) {
      return InjectedIo(fired);
    }
    return base_->Sync();
  }

  Status DoClose() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

FaultInjectingEnv::FaultInjectingEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (Status fired = MaybeFail("env.open"); !fired.ok()) {
    Status s = InjectedIo(fired);
    ReportIoFailure(path, s);
    return s;
  }
  STRUCTURA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                             base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      new FaultInjectingFile(path, this, std::move(base)));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (Status fired = MaybeFail("env.rename"); !fired.ok()) {
    Status s = InjectedIo(fired);
    ReportIoFailure(to, s);
    return s;
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::SyncDir(const std::string& dir) {
  if (Status fired = MaybeFail("env.syncdir"); !fired.ok()) {
    Status s = InjectedIo(fired);
    ReportIoFailure(dir, s);
    return s;
  }
  return base_->SyncDir(dir);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

}  // namespace structura
