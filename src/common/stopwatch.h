#ifndef STRUCTURA_COMMON_STOPWATCH_H_
#define STRUCTURA_COMMON_STOPWATCH_H_

#include <cstdint>

#include "common/clock.h"

namespace structura {

/// Monotonic wall-clock stopwatch for coarse measurements in examples and
/// experiment harnesses (benchmarks proper use google-benchmark timing).
/// Takes an injectable Clock so simulated-time harnesses measure
/// simulated elapsed time; nullptr = real time.
class Stopwatch {
 public:
  explicit Stopwatch(Clock* clock = nullptr)
      : clock_(Clock::OrReal(clock)), start_nanos_(clock_->NowNanos()) {}

  void Reset() { start_nanos_ = clock_->NowNanos(); }

  double ElapsedSeconds() const {
    return static_cast<double>(clock_->NowNanos() - start_nanos_) * 1e-9;
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  Clock* clock_;
  int64_t start_nanos_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_STOPWATCH_H_
