#ifndef STRUCTURA_COMMON_STOPWATCH_H_
#define STRUCTURA_COMMON_STOPWATCH_H_

#include <chrono>

namespace structura {

/// Monotonic wall-clock stopwatch for coarse measurements in examples and
/// experiment harnesses (benchmarks proper use google-benchmark timing).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_STOPWATCH_H_
