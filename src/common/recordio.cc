#include "common/recordio.h"

#include <cstring>

#include "common/crc32c.h"

namespace structura {

// Non-text bytes bracket the marker so document payloads (wiki markup,
// SDL text, serialized rows) can never collide with it by accident.
const char kFrameMagic[kFrameMagicBytes] = {'\xD7', '\x9C', 'S', 'T',
                                            'R',    'v',    '1', '\xA5'};

void AppendFrame(std::string_view payload, std::string* out) {
  char header[kFrameHeaderBytes];
  std::memcpy(header, kFrameMagic, kFrameMagicBytes);
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t payload_crc = Crc32c(payload);
  std::memcpy(header + kFrameMagicBytes, &len, sizeof(len));
  std::memcpy(header + kFrameMagicBytes + 4, &payload_crc,
              sizeof(payload_crc));
  uint32_t header_crc =
      Crc32c(std::string_view(header, kFrameMagicBytes + 8));
  std::memcpy(header + kFrameMagicBytes + 8, &header_crc,
              sizeof(header_crc));
  out->append(header, kFrameHeaderBytes);
  out->append(payload);
}

std::string FrameRecord(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(payload, &out);
  return out;
}

bool FrameReader::ValidFrameAt(size_t pos, uint32_t* len) const {
  if (pos + kFrameHeaderBytes > buf_.size()) return false;
  if (std::memcmp(buf_.data() + pos, kFrameMagic, kFrameMagicBytes) != 0) {
    return false;
  }
  uint32_t stored_header_crc = 0;
  std::memcpy(&stored_header_crc, buf_.data() + pos + kFrameMagicBytes + 8,
              sizeof(stored_header_crc));
  if (Crc32c(buf_.substr(pos, kFrameMagicBytes + 8)) != stored_header_crc) {
    return false;
  }
  uint32_t payload_len = 0;
  uint32_t payload_crc = 0;
  std::memcpy(&payload_len, buf_.data() + pos + kFrameMagicBytes,
              sizeof(payload_len));
  std::memcpy(&payload_crc, buf_.data() + pos + kFrameMagicBytes + 4,
              sizeof(payload_crc));
  if (pos + kFrameHeaderBytes + payload_len > buf_.size()) return false;
  if (Crc32c(buf_.substr(pos + kFrameHeaderBytes, payload_len)) !=
      payload_crc) {
    return false;
  }
  *len = payload_len;
  return true;
}

std::optional<FrameReader::Frame> FrameReader::Next() {
  if (pos_ >= buf_.size()) return std::nullopt;
  uint32_t len = 0;
  if (ValidFrameAt(pos_, &len)) {
    Frame frame;
    frame.payload = buf_.substr(pos_ + kFrameHeaderBytes, len);
    frame.offset = pos_;
    ++report_.frames_valid;
    if (report_.damaged_regions > 0) ++report_.frames_salvaged;
    pos_ += kFrameHeaderBytes + len;
    return frame;
  }
  // Damage starting at pos_: scan forward for the next fully valid
  // frame. Candidates are validated end-to-end (header CRC and payload
  // CRC), so magic-shaped bytes inside a damaged payload cannot cause a
  // false resync.
  const size_t bad_start = pos_;
  if (report_.first_damage_offset == FrameScanReport::kNoDamage) {
    report_.first_damage_offset = bad_start;
  }
  const std::string_view magic(kFrameMagic, kFrameMagicBytes);
  size_t search = bad_start + 1;
  while (search < buf_.size()) {
    size_t candidate = buf_.find(magic, search);
    if (candidate == std::string_view::npos) break;
    if (ValidFrameAt(candidate, &len)) {
      ++report_.damaged_regions;
      report_.lost_ranges.emplace_back(bad_start, candidate);
      Frame frame;
      frame.payload = buf_.substr(candidate + kFrameHeaderBytes, len);
      frame.offset = candidate;
      frame.after_damage = true;
      ++report_.frames_valid;
      ++report_.frames_salvaged;
      pos_ = candidate + kFrameHeaderBytes + len;
      return frame;
    }
    search = candidate + 1;
  }
  // No later valid frame: everything from bad_start on is a tail the
  // store may truncate (a torn write, or end-of-file damage).
  report_.torn_tail = true;
  report_.torn_tail_offset = bad_start;
  report_.torn_tail_bytes = buf_.size() - bad_start;
  pos_ = buf_.size();
  return std::nullopt;
}

}  // namespace structura
