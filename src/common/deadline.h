#ifndef STRUCTURA_COMMON_DEADLINE_H_
#define STRUCTURA_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "common/clock.h"

namespace structura {

/// A monotonic point in time after which a request should stop working.
/// Reads time through an injectable Clock (default: the real
/// steady_clock-backed one), so wall-clock adjustments never shorten or
/// extend a request's budget and tests can expire deadlines by
/// advancing a SimulatedClock instead of sleeping. Default-constructed
/// deadlines are infinite: `Expired()` is always false and checks cost
/// nothing beyond a comparison, so code can take a `Deadline`
/// unconditionally.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline AfterNanos(int64_t nanos, Clock* clock = nullptr) {
    Deadline d;
    d.clock_ = Clock::OrReal(clock);
    d.at_nanos_ = d.clock_->NowNanos() + nanos;
    return d;
  }
  static Deadline AfterMillis(uint64_t ms, Clock* clock = nullptr) {
    return AfterNanos(static_cast<int64_t>(ms) * 1'000'000, clock);
  }
  static Deadline AfterMicros(uint64_t us, Clock* clock = nullptr) {
    return AfterNanos(static_cast<int64_t>(us) * 1'000, clock);
  }

  bool IsInfinite() const { return clock_ == nullptr; }
  bool Expired() const {
    return !IsInfinite() && clock_->NowNanos() >= at_nanos_;
  }

  /// Time left before expiry, clamped at zero. Infinite deadlines report
  /// the maximum representable duration.
  std::chrono::nanoseconds Remaining() const {
    if (IsInfinite()) return std::chrono::nanoseconds::max();
    int64_t left = at_nanos_ - clock_->NowNanos();
    return std::chrono::nanoseconds(left > 0 ? left : 0);
  }

  uint64_t RemainingMillis() const {
    if (IsInfinite()) return UINT64_MAX;
    return static_cast<uint64_t>(Remaining().count() / 1'000'000);
  }

 private:
  /// nullptr encodes the infinite deadline — a finite one always has a
  /// clock to read.
  Clock* clock_ = nullptr;
  int64_t at_nanos_ = 0;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_DEADLINE_H_
