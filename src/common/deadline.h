#ifndef STRUCTURA_COMMON_DEADLINE_H_
#define STRUCTURA_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

namespace structura {

/// A monotonic point in time after which a request should stop working.
/// Built on steady_clock so wall-clock adjustments never shorten or
/// extend a request's budget. Default-constructed deadlines are
/// infinite: `Expired()` is always false and checks cost nothing beyond
/// a comparison, so code can take a `Deadline` unconditionally.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  /// Infinite: never expires.
  Deadline() : at_(TimePoint::max()) {}

  static Deadline Infinite() { return Deadline(); }
  static Deadline At(TimePoint tp) {
    Deadline d;
    d.at_ = tp;
    return d;
  }
  static Deadline AfterMillis(uint64_t ms) {
    return At(Clock::now() + std::chrono::milliseconds(ms));
  }
  static Deadline AfterMicros(uint64_t us) {
    return At(Clock::now() + std::chrono::microseconds(us));
  }

  bool IsInfinite() const { return at_ == TimePoint::max(); }
  bool Expired() const { return !IsInfinite() && Clock::now() >= at_; }

  TimePoint time_point() const { return at_; }

  /// Time left before expiry, clamped at zero. Infinite deadlines report
  /// the maximum representable duration.
  Clock::duration Remaining() const {
    if (IsInfinite()) return Clock::duration::max();
    TimePoint now = Clock::now();
    return now >= at_ ? Clock::duration::zero() : at_ - now;
  }

  uint64_t RemainingMillis() const {
    if (IsInfinite()) return UINT64_MAX;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        Remaining());
    return static_cast<uint64_t>(ms.count());
  }

 private:
  TimePoint at_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_DEADLINE_H_
