#ifndef STRUCTURA_COMMON_LOGGING_H_
#define STRUCTURA_COMMON_LOGGING_H_

#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace structura {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Process-wide minimum level; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Pluggable sink for emitted log lines. The default sink writes one
/// formatted line to stderr; tests install a capture sink to assert on
/// warnings. Sinks are invoked serially under the logging mutex (they
/// must not log recursively). Passing nullptr restores the default.
using LogSink = std::function<void(
    LogLevel level, const char* file, int line, const std::string& message)>;
void SetLogSink(LogSink sink);

/// Emits one line through the active sink (stderr by default) and bumps
/// the `log.lines.<level>` registry counters. Prefer STRUCTURA_LOG.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// RAII test helper: captures every emitted line (regardless of sink)
/// for the scope's lifetime and restores the previous sink behaviour on
/// destruction. Captured lines do NOT also reach stderr.
class ScopedLogCapture {
 public:
  struct Line {
    LogLevel level;
    std::string file;  // basename
    int line;
    std::string message;
  };

  ScopedLogCapture();
  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;
  ~ScopedLogCapture();

  std::vector<Line> Lines() const;
  size_t CountAtLevel(LogLevel level) const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

namespace internal_logging {

/// Accumulates a log line via operator<< and emits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace structura

/// Usage: STRUCTURA_LOG(kInfo) << "loaded " << n << " docs";
#define STRUCTURA_LOG(severity)                                      \
  ::structura::internal_logging::LogStream(                          \
      ::structura::LogLevel::severity, __FILE__, __LINE__)

#endif  // STRUCTURA_COMMON_LOGGING_H_
