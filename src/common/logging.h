#ifndef STRUCTURA_COMMON_LOGGING_H_
#define STRUCTURA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace structura {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one formatted line to stderr. Prefer the STRUCTURA_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal_logging {

/// Accumulates a log line via operator<< and emits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace structura

/// Usage: STRUCTURA_LOG(kInfo) << "loaded " << n << " docs";
#define STRUCTURA_LOG(severity)                                      \
  ::structura::internal_logging::LogStream(                          \
      ::structura::LogLevel::severity, __FILE__, __LINE__)

#endif  // STRUCTURA_COMMON_LOGGING_H_
