#ifndef STRUCTURA_COMMON_ENV_H_
#define STRUCTURA_COMMON_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace structura {

class Env;

/// A durable, append-only file handle in the LevelDB-Env / SQLite-VFS
/// mold. Every call returns Status so a full disk or a failing device
/// surfaces exactly where the syscall failed instead of being swallowed
/// by stream state nobody checks.
///
/// Durability contract:
///  - Append pushes bytes to the OS (implementations are unbuffered, so
///    readers opening the file see appended bytes immediately).
///  - Flush pushes any userspace buffering to the OS. It is NOT a
///    durability point.
///  - Sync is the durability point: it returns OK only after
///    fsync/fdatasync reported the bytes stable.
///
/// Sticky failure (the fsyncgate rule): after ANY operation fails, the
/// file is permanently failed — every later call returns the first
/// error without touching the file descriptor. A failed fsync may have
/// dropped dirty pages from the page cache, so retrying the sync and
/// believing its OK would acknowledge data that never reached disk.
/// Recovery is explicit: the owner opens a fresh file (typically after
/// a checkpoint made the failed tail redundant). The first failure is
/// reported to the owning Env's i/o-failure ledger, which feeds the
/// `storage.disk` health signal.
///
/// Calls are internally serialized; Sync from one thread may overlap
/// Append from another (group commit syncs while appenders queue).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(std::string_view data);
  Status Flush();
  Status Sync();
  /// Flush + close. The handle is failed afterwards ("file closed"), so
  /// accidental use-after-close surfaces as an error, not a crash.
  Status Close();

  /// True once any operation has failed (or the file was closed).
  bool failed() const;
  /// The first error observed, or OK. After Close() on a healthy file:
  /// a "file closed" error.
  Status sticky_status() const;

  const std::string& path() const { return path_; }

 protected:
  WritableFile(std::string path, Env* env)
      : path_(std::move(path)), env_(env) {}

  virtual Status DoAppend(std::string_view data) = 0;
  virtual Status DoFlush() = 0;
  virtual Status DoSync() = 0;
  virtual Status DoClose() = 0;

 private:
  /// Runs `op` under the file mutex unless already failed; latches the
  /// first failure and reports it to the env ledger.
  template <typename Op>
  Status Run(Op op);

  std::string path_;
  Env* env_;
  mutable std::mutex mutex_;
  Status sticky_;
  bool latched_ = false;
};

/// The storage I/O environment: how the system touches the filesystem.
/// Production code uses Env::Default() (a PosixEnv); tests wrap it in a
/// FaultInjectingEnv to inject ENOSPC/EIO/short writes at the syscall
/// boundary. The env also keeps an i/o-failure ledger — a count and
/// last message of every unrecoverable failure its files and operations
/// reported — which the `storage.disk` health signal polls.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide PosixEnv singleton.
  static Env* Default();

  /// Opens `path` for writing: truncate=true starts empty, false
  /// appends to whatever is there.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Atomically renames `from` to `to` (same filesystem). NOT durable
  /// by itself — callers must SyncDir the parent directory afterwards
  /// for the rename to survive a power cut.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// fsyncs a directory so completed renames/creates in it are durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  // --- i/o-failure ledger -------------------------------------------

  /// Records one unrecoverable i/o failure (called by files latching
  /// sticky state and by failed env-level operations).
  void ReportIoFailure(const std::string& path, const Status& status);
  /// Total unrecoverable failures reported to this env.
  uint64_t io_failures() const {
    return io_failures_.load(std::memory_order_relaxed);
  }
  std::string last_io_error() const;

  /// Active probe: writes, syncs, and removes a small scratch file
  /// under `dir`. OK means the device currently accepts durable
  /// writes; the error says why not. Used by the `storage.disk` health
  /// signal to distinguish "one file died" from "the disk is gone".
  Status ProbeWrite(const std::string& dir);

 private:
  mutable std::mutex ledger_mutex_;
  std::atomic<uint64_t> io_failures_{0};
  std::string last_io_error_;
};

/// Crash-safe whole-file replacement: write `path`.tmp, fsync it,
/// rename over `path`, fsync the parent directory. At every
/// intermediate crash point the old file is intact and authoritative.
/// When `pre_rename_failpoint` is non-null it is evaluated after the
/// tmp write but before the durability steps, modeling a crash that
/// leaves a complete-looking tmp file which must never be trusted.
Status AtomicReplaceFile(Env* env, const std::string& path,
                         std::string_view contents,
                         const char* pre_rename_failpoint = nullptr);

/// Env wrapper injecting faults at the syscall boundary, keyed off the
/// failpoint registry (common/failpoint.h). Sites:
///   env.open          NewWritableFile fails (kIoError)
///   env.write         Append fails with kIoError, no bytes written
///   env.write.enospc  Append fails with kResourceExhausted (full disk)
///   env.write.short   power cut mid-write: half the bytes reach the
///                     file, then kIoError; the file latches sticky so
///                     the torn bytes are guaranteed to stay the tail
///   env.sync          Sync fails with kIoError (fsyncgate scenario)
///   env.rename        RenameFile fails with kIoError
///   env.syncdir       SyncDir fails with kIoError
/// Every injected failure is reported to THIS env's ledger (not the
/// base env's), so the health signal under test observes it.
class FaultInjectingEnv : public Env {
 public:
  /// `base` must outlive this env; defaults to Env::Default().
  explicit FaultInjectingEnv(Env* base = nullptr);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;

 private:
  Env* base_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_ENV_H_
