#include "common/failpoint.h"

#include "common/strings.h"

namespace structura {

std::atomic<int> FailpointRegistry::armed_count_{0};
thread_local int FailpointRegistry::suppression_depth_ = 0;

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, Spec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.spec.mode == Spec::Mode::kOff &&
      spec.mode != Spec::Mode::kOff) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  entry.spec = spec;
  entry.counters = Counters{};
  entry.rng = Rng(spec.seed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.spec.mode != Spec::Mode::kOff) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.spec.mode = Spec::Mode::kOff;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.spec.mode != Spec::Mode::kOff) {
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  entries_.clear();
}

bool FailpointRegistry::IsArmed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it != entries_.end() &&
         it->second.spec.mode != Spec::Mode::kOff;
}

FailpointRegistry::Counters FailpointRegistry::GetCounters(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? Counters{} : it->second.counters;
}

std::vector<std::pair<std::string, FailpointRegistry::Counters>>
FailpointRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Counters>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.counters);
  }
  return out;
}

Status FailpointRegistry::Evaluate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() ||
      it->second.spec.mode == Spec::Mode::kOff) {
    return Status::OK();
  }
  Entry& entry = it->second;
  const uint64_t hit = ++entry.counters.hits;
  bool fire = false;
  switch (entry.spec.mode) {
    case Spec::Mode::kOff:
      break;
    case Spec::Mode::kAlways:
      fire = true;
      break;
    case Spec::Mode::kNth:
      fire = hit == entry.spec.n;
      break;
    case Spec::Mode::kFrom:
      fire = hit >= entry.spec.n;
      break;
    case Spec::Mode::kProbability:
      fire = entry.rng.NextBool(entry.spec.probability);
      break;
  }
  if (!fire) return Status::OK();
  ++entry.counters.fires;
  return Status::Internal(
      StrFormat("failpoint '%s' fired (hit %llu)",
                std::string(name).c_str(),
                static_cast<unsigned long long>(hit)));
}

}  // namespace structura
