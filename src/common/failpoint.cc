#include "common/failpoint.h"

#include "common/strings.h"

namespace structura {

std::atomic<int> FailpointRegistry::armed_count_{0};
thread_local int FailpointRegistry::suppression_depth_ = 0;

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

void FailpointRegistry::Arm(const std::string& name, Spec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[name];
  if (entry.spec.mode == Spec::Mode::kOff &&
      spec.mode != Spec::Mode::kOff) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  entry.spec = spec;
  entry.counters = Counters{};
  entry.rng = Rng(spec.seed);
}

void FailpointRegistry::Disarm(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return;
  if (it->second.spec.mode != Spec::Mode::kOff) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.spec.mode = Spec::Mode::kOff;
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.spec.mode != Spec::Mode::kOff) {
      armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  entries_.clear();
}

bool FailpointRegistry::IsArmed(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it != entries_.end() &&
         it->second.spec.mode != Spec::Mode::kOff;
}

FailpointRegistry::Counters FailpointRegistry::GetCounters(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it == entries_.end() ? Counters{} : it->second.counters;
}

std::vector<std::pair<std::string, FailpointRegistry::Counters>>
FailpointRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Counters>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.counters);
  }
  return out;
}

namespace {

/// Applies the armed firing policy to one evaluation. Caller holds the
/// registry mutex.
bool PolicyFires(FailpointRegistry::Spec& spec, uint64_t hit, Rng& rng) {
  switch (spec.mode) {
    case FailpointRegistry::Spec::Mode::kOff:
      return false;
    case FailpointRegistry::Spec::Mode::kAlways:
      return true;
    case FailpointRegistry::Spec::Mode::kNth:
      return hit == spec.n;
    case FailpointRegistry::Spec::Mode::kFrom:
      return hit >= spec.n;
    case FailpointRegistry::Spec::Mode::kProbability:
      return rng.NextBool(spec.probability);
  }
  return false;
}

}  // namespace

Status FailpointRegistry::Evaluate(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() ||
      it->second.spec.mode == Spec::Mode::kOff) {
    return Status::OK();
  }
  Entry& entry = it->second;
  const uint64_t hit = ++entry.counters.hits;
  if (!PolicyFires(entry.spec, hit, entry.rng)) return Status::OK();
  ++entry.counters.fires;
  return Status::Internal(
      StrFormat("failpoint '%s' fired (hit %llu)",
                std::string(name).c_str(),
                static_cast<unsigned long long>(hit)));
}

Status FailpointRegistry::EvaluateCorrupt(std::string_view name,
                                          std::string* buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end() ||
      it->second.spec.mode == Spec::Mode::kOff) {
    return Status::OK();
  }
  Entry& entry = it->second;
  const uint64_t hit = ++entry.counters.hits;
  if (!PolicyFires(entry.spec, hit, entry.rng)) return Status::OK();
  ++entry.counters.fires;
  if (entry.spec.payload == Spec::Payload::kError) {
    return Status::Internal(
        StrFormat("failpoint '%s' fired (hit %llu)",
                  std::string(name).c_str(),
                  static_cast<unsigned long long>(hit)));
  }
  if (buf != nullptr && !buf->empty()) {
    size_t off =
        static_cast<size_t>(entry.spec.corrupt_offset % buf->size());
    char& byte = (*buf)[off];
    byte = entry.spec.payload == Spec::Payload::kFlipByte
               ? static_cast<char>(byte ^ '\xFF')
               : '\0';
  }
  return Status::OK();  // silent corruption: the write proceeds
}

}  // namespace structura
