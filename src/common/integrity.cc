#include "common/integrity.h"

#include "common/strings.h"

namespace structura {

void IntegrityCounters::Merge(const IntegrityCounters& other) {
  records_verified += other.records_verified;
  corrupt_records += other.corrupt_records;
  salvaged_records += other.salvaged_records;
  lost_txns += other.lost_txns;
  quarantined_segments += other.quarantined_segments;
  torn_tail_bytes += other.torn_tail_bytes;
  checkpoints_rejected += other.checkpoints_rejected;
  stale_wal_records += other.stale_wal_records;
}

std::string IntegrityCounters::ToString() const {
  return StrFormat(
      "records_verified=%llu corrupt_records=%llu salvaged_records=%llu "
      "lost_txns=%llu quarantined_segments=%llu torn_tail_bytes=%llu "
      "checkpoints_rejected=%llu stale_wal_records=%llu",
      static_cast<unsigned long long>(records_verified),
      static_cast<unsigned long long>(corrupt_records),
      static_cast<unsigned long long>(salvaged_records),
      static_cast<unsigned long long>(lost_txns),
      static_cast<unsigned long long>(quarantined_segments),
      static_cast<unsigned long long>(torn_tail_bytes),
      static_cast<unsigned long long>(checkpoints_rejected),
      static_cast<unsigned long long>(stale_wal_records));
}

}  // namespace structura
