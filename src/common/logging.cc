#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/metrics.h"

namespace structura {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex g_log_mutex;

// Guarded by g_log_mutex. Leaked (function-local static to a pointer)
// so a sink installed for process lifetime never runs ~function during
// static destruction.
LogSink* SinkSlot() {
  static LogSink* sink = new LogSink();
  return sink;
}

obs::Counter* LineCounter(LogLevel level) {
  // One registry counter per level; resolved once, then lock-free.
  static obs::Counter* debug =
      obs::MetricsRegistry::Default().GetCounter("log.lines.debug");
  static obs::Counter* info =
      obs::MetricsRegistry::Default().GetCounter("log.lines.info");
  static obs::Counter* warning =
      obs::MetricsRegistry::Default().GetCounter("log.lines.warning");
  static obs::Counter* error =
      obs::MetricsRegistry::Default().GetCounter("log.lines.error");
  switch (level) {
    case LogLevel::kDebug:
      return debug;
    case LogLevel::kInfo:
      return info;
    case LogLevel::kWarning:
      return warning;
    case LogLevel::kError:
      return error;
  }
  return error;
}

const char* Basename(const char* file) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  *SinkSlot() = std::move(sink);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  LineCounter(level)->Increment();
  const char* base = Basename(file);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  const LogSink& sink = *SinkSlot();
  if (sink) {
    sink(level, base, line, message);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level), base, line,
               message.c_str());
}

struct ScopedLogCapture::State {
  mutable std::mutex mutex;
  std::vector<Line> lines;
  LogSink previous;
};

ScopedLogCapture::ScopedLogCapture() : state_(std::make_shared<State>()) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  state_->previous = *SinkSlot();
  std::shared_ptr<State> state = state_;
  *SinkSlot() = [state](LogLevel level, const char* file, int line,
                        const std::string& message) {
    std::lock_guard<std::mutex> lines_lock(state->mutex);
    state->lines.push_back(Line{level, file, line, message});
  };
}

ScopedLogCapture::~ScopedLogCapture() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  *SinkSlot() = std::move(state_->previous);
}

std::vector<ScopedLogCapture::Line> ScopedLogCapture::Lines() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->lines;
}

size_t ScopedLogCapture::CountAtLevel(LogLevel level) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  size_t n = 0;
  for (const Line& l : state_->lines) {
    if (l.level == level) ++n;
  }
  return n;
}

}  // namespace structura
