#ifndef STRUCTURA_COMMON_RANDOM_H_
#define STRUCTURA_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace structura {

/// Deterministic, fast pseudo-random generator (splitmix64 core). All
/// randomized components of the library (corpus generation, simulated users,
/// sampling) take an explicit `Rng` so runs are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability `p`.
  bool NextBool(double p) { return NextDouble() < p; }

  /// Approximate standard normal via sum of 12 uniforms (Irwin-Hall).
  double NextGaussian() {
    double s = 0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return s - 6.0;
  }

  /// Zipf-like rank draw in [0, n): rank r with weight 1/(r+1)^theta.
  /// Uses inverse-CDF over precomputation-free rejection; adequate for
  /// workload skew generation.
  uint64_t NextZipf(uint64_t n, double theta);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful to give parallel tasks
  /// their own deterministic streams.
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
};

inline uint64_t Rng::NextZipf(uint64_t n, double theta) {
  // Simple two-pass-free approximation: draw u in (0,1], map through the
  // power-law inverse. Good enough for generating skewed workloads.
  double u = NextDouble();
  if (u <= 0) u = 1e-12;
  double x = 1.0;
  if (theta != 1.0) {
    // Inverse of normalized CDF for a continuous power law on [1, n+1].
    double a = 1.0 - theta;
    double hi = 1.0, nn = static_cast<double>(n) + 1.0;
    double pow_nn = std::pow(nn, a);
    x = std::pow(u * (pow_nn - hi) + hi, 1.0 / a);
  } else {
    double nn = static_cast<double>(n) + 1.0;
    x = std::exp(u * std::log(nn));
  }
  uint64_t r = static_cast<uint64_t>(x) - 1;
  return r >= n ? n - 1 : r;
}

}  // namespace structura

#endif  // STRUCTURA_COMMON_RANDOM_H_
