#ifndef STRUCTURA_COMMON_HASH_H_
#define STRUCTURA_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace structura {

/// 64-bit FNV-1a over arbitrary bytes. Stable across platforms and runs, so
/// it is safe to persist (used by the snapshot store for chunk identity).
inline uint64_t Fnv1a64(std::string_view data, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ULL ^ seed;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace structura

#endif  // STRUCTURA_COMMON_HASH_H_
