#ifndef STRUCTURA_COMMON_THREAD_POOL_H_
#define STRUCTURA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace structura {

/// Fixed-size worker pool. Tasks are `std::function<void()>`; `Submit`
/// returns a future for composition. Destruction drains pending tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (minimum 1).
  explicit ThreadPool(size_t num_threads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues `fn`; returns a future resolved when it completes.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t active_ = 0;
  bool stop_ = false;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all complete.
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace structura

#endif  // STRUCTURA_COMMON_THREAD_POOL_H_
