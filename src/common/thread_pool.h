#ifndef STRUCTURA_COMMON_THREAD_POOL_H_
#define STRUCTURA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace structura {

/// Fixed-size worker pool. Tasks are `std::function<void()>`; `Submit`
/// returns a future for composition. Destruction drains pending tasks.
///
/// The queue can be bounded: a pool constructed with `max_queue > 0`
/// rejects `TryPost`/`TrySubmit` calls once that many tasks are waiting,
/// which is what the serving frontend's admission control builds on.
/// `Post`/`Submit` always enqueue regardless of the bound — internal
/// machinery (ParallelFor, shutdown paths) must never be load-shed.
///
/// A raw task that throws is caught inside the worker (the worker stays
/// alive, the exception is swallowed) and counted in
/// `Stats::dropped_tasks`; tasks submitted through `Submit` deliver
/// their exception through the returned future instead.
class ThreadPool {
 public:
  struct Stats {
    uint64_t dropped_tasks = 0;   // raw tasks that threw, caught in-loop
    uint64_t rejected_tasks = 0;  // TryPost/TrySubmit refused (queue full)
    size_t queue_depth = 0;       // tasks waiting right now
    size_t queue_high_water = 0;  // max queue_depth ever observed
    size_t active_workers = 0;    // workers running a task right now
  };

  /// Spawns `num_threads` workers (minimum 1). `max_queue == 0` leaves
  /// the queue unbounded.
  explicit ThreadPool(size_t num_threads, size_t max_queue = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueues `fn`; returns a future resolved when it completes. Not
  /// subject to the queue bound.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    Post([task]() { (*task)(); });
    return fut;
  }

  /// Bounded variant of Submit: returns nullopt (and counts a
  /// rejection) when the queue is at capacity.
  template <typename Fn>
  auto TrySubmit(Fn&& fn)
      -> std::optional<std::future<std::invoke_result_t<Fn>>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (!TryPost([task]() { (*task)(); })) return std::nullopt;
    return fut;
  }

  /// Fire-and-forget enqueue. Not subject to the queue bound.
  void Post(std::function<void()> fn);

  /// Fire-and-forget enqueue that respects the queue bound; returns
  /// false (without blocking) when the queue is full.
  bool TryPost(std::function<void()> fn);

  /// Blocks until every task submitted so far has finished.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }
  size_t max_queue() const { return max_queue_; }

  Stats stats() const;

  /// Publishes this pool's live stats as registry callback gauges
  /// (`threadpool.<name>.queue_depth`, `.queue_high_water`,
  /// `.active_workers`, `.dropped_tasks`, `.rejected_tasks`) until the
  /// pool is destroyed. Re-publishing a name (another pool, later in
  /// the process) replaces the previous registration. All stat updates
  /// are read-modify-writes under the pool mutex, so the gauges never
  /// observe a torn or reset value.
  void PublishMetrics(const std::string& name);

 private:
  void Enqueue(std::function<void()> fn);
  void WorkerLoop();
  void UnpublishMetrics();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t max_queue_ = 0;
  size_t active_ = 0;
  uint64_t dropped_tasks_ = 0;
  uint64_t rejected_tasks_ = 0;
  size_t queue_high_water_ = 0;
  bool stop_ = false;
  /// (gauge name, registration id) pairs from PublishMetrics, removed
  /// in the destructor so the callbacks never outlive the pool.
  std::vector<std::pair<std::string, uint64_t>> published_gauges_;
};

/// Scheduling knobs for ParallelFor.
struct ParallelForOptions {
  /// Maximum loop indexes one dequeued task runs before yielding: after
  /// `grain` bodies the task re-posts a fresh continuation to the BACK
  /// of the pool queue, so tasks Post()ed concurrently (e.g. the serve
  /// path) interleave instead of waiting out the whole range. 0 =
  /// unbounded — a claimed task runs until the range is exhausted.
  size_t grain = 0;
  /// Cap on tasks seeded into the pool for this loop (0 = one per pool
  /// thread). Lets a caller keep a wide pool mostly free for other work.
  size_t max_workers = 0;
};

/// Runs `fn(i)` for i in [0, n) across `pool`, blocking until all
/// complete. If any body throws, the first exception is rethrown on the
/// calling thread after the loop finishes (remaining indexes may or may
/// not have run).
void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// As above with explicit scheduling options (grain / worker cap).
void ParallelFor(ThreadPool& pool, size_t n, const ParallelForOptions& opts,
                 const std::function<void(size_t)>& fn);

}  // namespace structura

#endif  // STRUCTURA_COMMON_THREAD_POOL_H_
