#ifndef STRUCTURA_COMMON_INTEGRITY_H_
#define STRUCTURA_COMMON_INTEGRITY_H_

#include <cstdint>
#include <string>

namespace structura {

/// Counters describing what storage recovery and scrubbing found —
/// the bit-rot analogue of the serving layer's ServingCounters.
/// Accumulated by WAL/checkpoint recovery, SegmentStore reopen, and the
/// Scrub() passes; surfaced by System::StatusReport().
struct IntegrityCounters {
  uint64_t records_verified = 0;   // records whose checksums validated
  uint64_t corrupt_records = 0;    // damaged frames / failed validations
  uint64_t salvaged_records = 0;   // valid records recovered past damage
  uint64_t lost_txns = 0;          // transactions dropped atomically
  uint64_t quarantined_segments = 0;  // segment files with mid-file damage
  uint64_t torn_tail_bytes = 0;    // trailing bytes truncated as torn
  uint64_t checkpoints_rejected = 0;  // checkpoint images failing their footer
  uint64_t stale_wal_records = 0;  // records of a superseded (pre-checkpoint)
                                   // log that resurrected and were dropped

  void Merge(const IntegrityCounters& other);

  /// True when any damage (as opposed to clean verification) was seen.
  bool AnyDamage() const {
    return corrupt_records > 0 || lost_txns > 0 ||
           quarantined_segments > 0 || torn_tail_bytes > 0 ||
           checkpoints_rejected > 0;
  }

  /// One-line rendering used by StatusReport().
  std::string ToString() const;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_INTEGRITY_H_
