#include "common/sim_env.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <sstream>

namespace structura {
namespace {

/// Parent directory by the same rule AtomicReplaceFile uses, so the
/// dir a caller SyncDirs is string-identical to the dir the pending-op
/// journal recorded.
std::string Parent(const std::string& path) {
  size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".")
                                    : path.substr(0, slash);
}

std::string NormalizeDir(const std::string& dir) {
  std::string d = dir;
  while (d.size() > 1 && d.back() == '/') d.pop_back();
  return d;
}

std::optional<std::string> ReadRealFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteRealFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
}

std::string JoinDirs(const std::vector<std::string>& dirs) {
  std::string out;
  for (const std::string& d : dirs) {
    if (!out.empty()) out += ", ";
    out += d;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// SimWritableFile
// ---------------------------------------------------------------------

class SimWritableFile : public WritableFile {
 public:
  SimWritableFile(std::string path, SimulatedEnv* env,
                  std::unique_ptr<WritableFile> base)
      : WritableFile(std::move(path), env),
        sim_(env),
        base_(std::move(base)) {}

 protected:
  Status DoAppend(std::string_view data) override {
    return sim_->FileAppend(path(), base_.get(), data);
  }
  Status DoFlush() override { return sim_->FileFlush(base_.get()); }
  Status DoSync() override { return sim_->FileSync(path(), base_.get()); }
  Status DoClose() override { return sim_->FileClose(base_.get()); }

 private:
  SimulatedEnv* sim_;
  std::unique_ptr<WritableFile> base_;
};

// ---------------------------------------------------------------------
// SimulatedEnv: gating and bookkeeping
// ---------------------------------------------------------------------

SimulatedEnv::SimulatedEnv(Env* base)
    : base_(base != nullptr ? base : Env::Default()) {}

Status SimulatedEnv::PowerLossError() const {
  return Status::IoError("simulated power loss (after op " +
                         std::to_string(op_count_) + ", sync " +
                         std::to_string(sync_count_) + ")");
}

SimulatedEnv::Gate SimulatedEnv::EnterOpLocked() {
  if (powered_off_) return Gate::kAlreadyOff;
  ++op_count_;
  if (cut_at_op_ != 0 && op_count_ == cut_at_op_) {
    powered_off_ = true;
    return Gate::kCutNow;
  }
  return Gate::kProceed;
}

SimulatedEnv::Gate SimulatedEnv::EnterSyncLocked() {
  Gate gate = EnterOpLocked();
  if (gate != Gate::kProceed) return gate;
  ++sync_count_;
  if (cut_at_sync_ != 0 && sync_count_ == cut_at_sync_ &&
      cut_flavor_ == CutFlavor::kBeforeSync) {
    powered_off_ = true;
    return Gate::kCutNow;
  }
  return Gate::kProceed;
}

void SimulatedEnv::LeaveSyncLocked() {
  if (cut_at_sync_ != 0 && sync_count_ == cut_at_sync_ &&
      cut_flavor_ == CutFlavor::kAfterSync) {
    powered_off_ = true;
  }
}

void SimulatedEnv::CutAtOp(uint64_t n) {
  std::lock_guard<std::mutex> guard(mu_);
  cut_at_op_ = n;
}

void SimulatedEnv::CutAtSync(uint64_t n, CutFlavor flavor) {
  std::lock_guard<std::mutex> guard(mu_);
  cut_at_sync_ = n;
  cut_flavor_ = flavor;
}

void SimulatedEnv::PowerCut() {
  std::lock_guard<std::mutex> guard(mu_);
  powered_off_ = true;
}

bool SimulatedEnv::PoweredOff() const {
  std::lock_guard<std::mutex> guard(mu_);
  return powered_off_;
}

uint64_t SimulatedEnv::OpCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return op_count_;
}

uint64_t SimulatedEnv::SyncCount() const {
  std::lock_guard<std::mutex> guard(mu_);
  return sync_count_;
}

std::optional<SimulatedEnv::FileState> SimulatedEnv::TakeStateLocked(
    const std::string& path) {
  auto it = files_.find(path);
  if (it != files_.end()) {
    FileState st = std::move(it->second);
    files_.erase(it);
    return st;
  }
  std::optional<std::string> real = ReadRealFile(path);
  if (!real.has_value()) return std::nullopt;
  FileState st;
  st.durable = std::move(*real);
  return st;
}

// ---------------------------------------------------------------------
// Env interface
// ---------------------------------------------------------------------

Result<std::unique_ptr<WritableFile>> SimulatedEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (EnterOpLocked() != Gate::kProceed) {
      Status s = PowerLossError();
      ReportIoFailure(path, s);
      return s;
    }
    auto it = files_.find(path);
    if (it != files_.end()) {
      if (truncate) {
        FileState& st = it->second;
        if (!st.truncate_pending) {
          st.pre_truncate = std::move(st.durable);
          st.truncate_pending = true;
        }
        st.durable.clear();
        st.unsynced.clear();
        st.last_write_interrupted = false;
      }
    } else {
      // First touch: adopt whatever is really on disk as the durable
      // baseline (covers files written before the sim attached and
      // recovery-time out-of-band truncations).
      std::optional<std::string> real = ReadRealFile(path);
      FileState st;
      if (real.has_value()) {
        if (truncate) {
          st.truncate_pending = true;
          st.pre_truncate = std::move(*real);
        } else {
          st.durable = std::move(*real);
        }
      } else {
        journal_.push_back(MetaOp{MetaKind::kCreate, path, "", std::nullopt,
                                  {Parent(path)}});
      }
      files_[path] = std::move(st);
    }
  }
  STRUCTURA_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                             base_->NewWritableFile(path, truncate));
  return std::unique_ptr<WritableFile>(
      new SimWritableFile(path, this, std::move(base)));
}

Status SimulatedEnv::RenameFile(const std::string& from,
                                const std::string& to) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (EnterOpLocked() != Gate::kProceed) {
      Status s = PowerLossError();
      ReportIoFailure(to, s);
      return s;
    }
    std::optional<FileState> from_state = TakeStateLocked(from);
    if (from_state.has_value()) {
      MetaOp op{MetaKind::kRename, to, from, TakeStateLocked(to), {}};
      op.dirs.push_back(Parent(from));
      if (Parent(to) != Parent(from)) op.dirs.push_back(Parent(to));
      files_[to] = std::move(*from_state);
      journal_.push_back(std::move(op));
    }
    // No source on disk either: fall through and let the base env
    // produce the real error.
  }
  return base_->RenameFile(from, to);
}

Status SimulatedEnv::SyncDir(const std::string& dir) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    Gate gate = EnterSyncLocked();
    if (gate != Gate::kProceed) {
      Status s = PowerLossError();
      ReportIoFailure(dir, s);
      return s;
    }
    const std::string d = NormalizeDir(dir);
    for (MetaOp& op : journal_) {
      op.dirs.erase(std::remove_if(op.dirs.begin(), op.dirs.end(),
                                   [&d](const std::string& od) {
                                     return NormalizeDir(od) == d;
                                   }),
                    op.dirs.end());
    }
    journal_.erase(std::remove_if(journal_.begin(), journal_.end(),
                                  [](const MetaOp& op) {
                                    return op.dirs.empty();
                                  }),
                   journal_.end());
    LeaveSyncLocked();
  }
  // The real directory fsync is skipped: durability lives entirely in
  // the simulated ledger (CrashAndRecover rewrites the real files from
  // it), and a real fsync per fence would dominate sweep wall-time.
  // Only the error surface of a missing directory is preserved.
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    Status s = Status::IoError("open dir " + dir + ": no such directory");
    ReportIoFailure(dir, s);
    return s;
  }
  return Status::OK();
}

Status SimulatedEnv::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (EnterOpLocked() != Gate::kProceed) return PowerLossError();
    std::optional<FileState> st = TakeStateLocked(path);
    if (st.has_value()) {
      journal_.push_back(MetaOp{MetaKind::kRemove, path, "", std::move(st),
                                {Parent(path)}});
    }
  }
  return base_->RemoveFile(path);
}

// ---------------------------------------------------------------------
// WritableFile backends
// ---------------------------------------------------------------------

Status SimulatedEnv::FileAppend(const std::string& path, WritableFile* base,
                                std::string_view data) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    Gate gate = EnterOpLocked();
    if (gate == Gate::kCutNow) {
      // The interrupted write: its payload was handed to the device as
      // the power died, so a crash may keep a torn prefix of it — but
      // never the whole thing acknowledged.
      auto it = files_.find(path);
      if (it != files_.end()) {
        it->second.unsynced.emplace_back(data);
        it->second.last_write_interrupted = true;
      }
      return PowerLossError();
    }
    if (gate == Gate::kAlreadyOff) return PowerLossError();
    auto it = files_.find(path);
    if (it != files_.end()) it->second.unsynced.emplace_back(data);
  }
  return base->Append(data);
}

Status SimulatedEnv::FileSync(const std::string& path, WritableFile* base) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (EnterSyncLocked() != Gate::kProceed) return PowerLossError();
  }
  // Flush, not fsync: bytes must reach the OS (the repo's read paths
  // read the real files), but durability is the ledger's call — the
  // crash rewrites the file to the surviving image regardless. This
  // keeps a many-thousand-run sweep out of the disk's fsync latency.
  Status s = base->Flush();
  std::lock_guard<std::mutex> guard(mu_);
  if (s.ok()) {
    auto it = files_.find(path);
    if (it != files_.end()) {
      FileState& st = it->second;
      for (const std::string& w : st.unsynced) st.durable += w;
      st.unsynced.clear();
      st.truncate_pending = false;
      st.pre_truncate.clear();
      st.last_write_interrupted = false;
    }
  }
  LeaveSyncLocked();
  return s;
}

Status SimulatedEnv::FileFlush(WritableFile* base) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (powered_off_) return PowerLossError();
  }
  return base->Flush();
}

Status SimulatedEnv::FileClose(WritableFile* base) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (powered_off_) return PowerLossError();
  }
  return base->Close();
}

// ---------------------------------------------------------------------
// Crash computation
// ---------------------------------------------------------------------

std::vector<std::string> SimulatedEnv::PendingHazardsLocked() const {
  std::vector<std::string> out;
  for (const MetaOp& op : journal_) {
    std::string fence = " awaiting SyncDir(" + JoinDirs(op.dirs) + ")";
    switch (op.kind) {
      case MetaKind::kCreate:
        out.push_back("create " + op.path + fence + " — vanishes on crash");
        break;
      case MetaKind::kRename:
        out.push_back("rename " + op.from + " -> " + op.path + fence +
                      " — reverts on crash");
        break;
      case MetaKind::kRemove:
        out.push_back("remove " + op.path + fence +
                      " — resurrects on crash");
        break;
    }
  }
  return out;
}

std::vector<std::string> SimulatedEnv::PendingHazards() const {
  std::lock_guard<std::mutex> guard(mu_);
  return PendingHazardsLocked();
}

std::string SimulatedEnv::CrashReport::ToString() const {
  std::ostringstream out;
  out << "crash: " << files_tracked << " file(s); writes "
      << writes_survived << " survived / " << writes_dropped << " dropped / "
      << writes_torn << " torn; " << truncates_reverted
      << " truncate(s) reverted; meta ops " << meta_ops_survived
      << " survived / " << meta_ops_reverted << " reverted; "
      << hazards.size() << " hazard(s) pending";
  return out.str();
}

SimulatedEnv::CrashReport SimulatedEnv::CrashAndRecover(
    const CrashOptions& opts) {
  std::lock_guard<std::mutex> guard(mu_);
  powered_off_ = true;
  CrashReport report;
  report.hazards = PendingHazardsLocked();

  std::mt19937_64 rng(opts.seed ^ 0x9e3779b97f4a7c15ULL);
  auto survives = [&rng](double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };

  // Every real path the crash may rewrite or delete.
  std::set<std::string> touched;
  for (const auto& [path, st] : files_) touched.insert(path);
  for (const MetaOp& op : journal_) {
    touched.insert(op.path);
    if (!op.from.empty()) touched.insert(op.from);
  }

  // Metadata phase. A journaling filesystem commits directory ops in
  // order, so within a directory the surviving unfenced ops form a
  // prefix; directories are independent (cross-file reorder). The
  // non-surviving suffix is undone newest-first so stacked ops
  // (create tmp → rename tmp over file) unwind correctly.
  std::vector<bool> op_survives(journal_.size(), false);
  std::set<std::string> broken_dirs;
  for (size_t i = 0; i < journal_.size(); ++i) {
    const std::string dir = Parent(journal_[i].path);
    if (broken_dirs.count(dir) == 0 &&
        survives(opts.unfenced_meta_survival)) {
      op_survives[i] = true;
    } else {
      broken_dirs.insert(dir);
    }
  }
  for (size_t i = journal_.size(); i-- > 0;) {
    if (op_survives[i]) {
      ++report.meta_ops_survived;
      continue;
    }
    ++report.meta_ops_reverted;
    MetaOp& op = journal_[i];
    switch (op.kind) {
      case MetaKind::kCreate:
        files_.erase(op.path);
        break;
      case MetaKind::kRename: {
        auto it = files_.find(op.path);
        if (it != files_.end()) {
          FileState moved = std::move(it->second);
          files_.erase(it);
          files_[op.from] = std::move(moved);
        }
        if (op.saved.has_value()) {
          files_[op.path] = std::move(*op.saved);
        }
        break;
      }
      case MetaKind::kRemove:
        if (op.saved.has_value()) files_[op.path] = std::move(*op.saved);
        break;
    }
  }

  // Data phase: per file (deterministic order — files_ is an ordered
  // map), resolve the pending truncate, keep a seeded prefix of the
  // unsynced writes, maybe tear the first lost one.
  report.files_tracked = files_.size();
  for (auto& [path, st] : files_) {
    std::string content;
    if (st.truncate_pending && !survives(opts.unsynced_survival)) {
      // The truncation never reached disk; writes issued after it
      // assumed the truncated offsets and are void with it.
      content = st.pre_truncate;
      ++report.truncates_reverted;
      report.writes_dropped += st.unsynced.size();
    } else {
      content = st.durable;
      const size_t n = st.unsynced.size();
      // The interrupted write can never survive whole.
      const size_t limit =
          st.last_write_interrupted && n > 0 ? n - 1 : n;
      size_t k = 0;
      while (k < limit && survives(opts.unsynced_survival)) ++k;
      for (size_t i = 0; i < k; ++i) content += st.unsynced[i];
      report.writes_survived += k;
      report.writes_dropped += n - k;
      if (k < n) {
        const std::string& w = st.unsynced[k];
        const bool interrupted_last =
            st.last_write_interrupted && k == n - 1;
        int64_t tear = -1;
        if (interrupted_last && opts.forced_tear_bytes >= 0) {
          tear = std::min<int64_t>(opts.forced_tear_bytes,
                                   static_cast<int64_t>(w.size()));
        } else if (opts.torn_writes && !w.empty()) {
          tear = std::uniform_int_distribution<int64_t>(
              0, static_cast<int64_t>(w.size()))(rng);
          // Seeded coin: device loses whole sectors, not bytes.
          if (rng() % 2 == 0) tear -= tear % 512;
        }
        if (tear > 0) {
          content.append(w.data(), static_cast<size_t>(tear));
          ++report.writes_torn;
        }
      }
    }
    WriteRealFile(path, content);
    touched.erase(path);
  }
  // Tracked at the crash but absent from the surviving image
  // (unfenced creates, rename sources): gone.
  for (const std::string& path : touched) std::remove(path.c_str());

  files_.clear();
  journal_.clear();
  powered_off_ = false;
  op_count_ = 0;
  sync_count_ = 0;
  cut_at_op_ = 0;
  cut_at_sync_ = 0;
  return report;
}

}  // namespace structura
