#ifndef STRUCTURA_COMMON_CANCELLATION_H_
#define STRUCTURA_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>

#include "common/deadline.h"
#include "common/status.h"

namespace structura {

/// Shareable view of a cancellation flag. Copies are cheap (one shared
/// pointer) and `cancelled()` is a single relaxed atomic load, so long
/// loops can poll it per iteration. A default-constructed token is never
/// cancelled, letting every interruptible function take one
/// unconditionally.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag: the caller keeps the source, hands
/// tokens to the work it dispatches, and flips the flag to request
/// cooperative teardown. Cancellation is sticky — there is no reset; use
/// a fresh source per request.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  CancellationToken token() const { return CancellationToken(flag_); }
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The pair every cooperative check-point needs: "has the caller given
/// up, and is there time left?" Long loops call `Check()` every few
/// hundred iterations and propagate the non-OK Status; the defaults
/// (infinite deadline, null token) make an `Interrupt` argument safe to
/// thread through code whose callers don't care.
///
/// Cancellation is reported before deadline expiry: an explicit
/// cancellation is the stronger caller intent.
struct Interrupt {
  Deadline deadline;
  CancellationToken token;

  Status Check() const;

  bool CanInterrupt() const {
    return !deadline.IsInfinite() || token.cancelled();
  }
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_CANCELLATION_H_
