#ifndef STRUCTURA_COMMON_FAILPOINT_H_
#define STRUCTURA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace structura {

/// Deterministic fault-injection framework. Durability- and
/// failure-sensitive code declares named failpoints (via
/// STRUCTURA_FAILPOINT or MaybeFail); tests arm them with a firing
/// policy and the code path observes an injected error Status exactly
/// where a real fault (full disk, killed worker, crashing extractor)
/// would surface one.
///
/// Well-known failpoint names wired through the system:
///   wal.append          rdbms::WriteAheadLog::Append, before the write
///   wal.append.torn     same site; fires a simulated torn tail (half the
///                       frame reaches the file, then "crash")
///   wal.flush           rdbms::WriteAheadLog::Flush
///   wal.frame           the framed WAL bytes about to be written;
///                       corruption specs silently damage them (bit-rot)
///   db.checkpoint.write rdbms::Database::Checkpoint, before the rename
///   checkpoint.write    the full checkpoint image (incl. footer) about
///                       to be written; corruption specs damage it
///   segment.record      a framed SegmentStore record about to be written
///   snapshot.append     storage::SnapshotStore::Append
///   snapshot.delta      a stored snapshot delta; corruption specs damage
///                       it after its content checksum was recorded
///   mr.reduce           mr::MapReduceJob reduce-task attempt
///   ie.extract          one (document, extractor) run; also evaluated as
///                       "ie.extract.<name>" to target a single operator
///   env.open            FaultInjectingEnv::NewWritableFile (kIoError)
///   env.write           FaultInjectingEnv file append (kIoError, no
///                       bytes written)
///   env.write.enospc    same site, fails with kResourceExhausted
///   env.write.short     same site, power cut: half the bytes land,
///                       then kIoError and the file latches sticky
///   env.sync            FaultInjectingEnv fsync (kIoError)
///   env.rename          FaultInjectingEnv::RenameFile (kIoError)
///   env.syncdir         FaultInjectingEnv::SyncDir (kIoError)
class FailpointRegistry {
 public:
  /// Firing policy for one armed failpoint. Hit indices are 1-based and
  /// count evaluations made while the failpoint is armed.
  struct Spec {
    enum class Mode {
      kOff,
      kAlways,       // every hit fires
      kNth,          // exactly hit #n fires (n == 1: classic fail-once)
      kFrom,         // every hit >= n fires (models a crashed process)
      kProbability,  // each hit fires with probability p (seeded rng)
    };
    /// What a firing evaluation does at a corruption-capable site
    /// (MaybeCorrupt): kError injects an error Status like any other
    /// failpoint; kFlipByte / kZeroByte silently damage one byte of the
    /// payload at `corrupt_offset` (mod payload size) and let the write
    /// "succeed" — deterministic bit-rot.
    enum class Payload { kError, kFlipByte, kZeroByte };

    Mode mode = Mode::kOff;
    uint64_t n = 1;
    double probability = 0.0;
    uint64_t seed = 0;
    Payload payload = Payload::kError;
    uint64_t corrupt_offset = 0;

    static Spec Once() { return Nth(1); }
    static Spec Nth(uint64_t n) {
      Spec s;
      s.mode = Mode::kNth;
      s.n = n;
      return s;
    }
    static Spec From(uint64_t n) {
      Spec s;
      s.mode = Mode::kFrom;
      s.n = n;
      return s;
    }
    static Spec Always() {
      Spec s;
      s.mode = Mode::kAlways;
      return s;
    }
    static Spec WithProbability(double p, uint64_t seed) {
      Spec s;
      s.mode = Mode::kProbability;
      s.probability = p;
      s.seed = seed;
      return s;
    }
    /// Never fires; useful to count hits at a site (e.g. to size a
    /// crash sweep before running it).
    static Spec CountOnly() { return Nth(0); }
    /// On the nth evaluation, flip every bit of payload byte `offset`
    /// (mod payload size); the write itself succeeds.
    static Spec FlipByteAt(uint64_t nth, uint64_t offset) {
      Spec s = Nth(nth);
      s.payload = Payload::kFlipByte;
      s.corrupt_offset = offset;
      return s;
    }
    /// Like FlipByteAt but zeroes the byte.
    static Spec ZeroByteAt(uint64_t nth, uint64_t offset) {
      Spec s = Nth(nth);
      s.payload = Payload::kZeroByte;
      s.corrupt_offset = offset;
      return s;
    }
  };

  struct Counters {
    uint64_t hits = 0;   // evaluations while armed
    uint64_t fires = 0;  // evaluations that injected a failure
  };

  static FailpointRegistry& Instance();

  void Arm(const std::string& name, Spec spec);
  void Disarm(const std::string& name);
  void DisarmAll();

  bool IsArmed(const std::string& name) const;
  Counters GetCounters(const std::string& name) const;
  /// Every failpoint touched since the last DisarmAll, in name order.
  std::vector<std::pair<std::string, Counters>> Snapshot() const;

  /// True when at least one failpoint is armed anywhere in the process
  /// and injection is not suppressed on this thread. The disarmed fast
  /// path is one relaxed atomic load.
  static bool Active() {
    return armed_count_.load(std::memory_order_relaxed) > 0 &&
           suppression_depth_ == 0;
  }

  /// Slow path used by MaybeFail; call Active() first.
  Status Evaluate(std::string_view name);

  /// Slow path used by MaybeCorrupt: like Evaluate, but a firing spec
  /// whose payload is a corruption mode mutates `buf` in place and
  /// returns OK (the caller's write proceeds with damaged bytes).
  Status EvaluateCorrupt(std::string_view name, std::string* buf);

 private:
  friend class ScopedFailpointSuppression;

  FailpointRegistry() = default;

  struct Entry {
    Spec spec;
    Counters counters;
    Rng rng{0};
  };

  static std::atomic<int> armed_count_;
  static thread_local int suppression_depth_;

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Evaluates the named failpoint: OK when disarmed (the common case,
/// one atomic load), an injected error Status when the armed policy
/// fires.
inline Status MaybeFail(std::string_view name) {
  if (!FailpointRegistry::Active()) return Status::OK();
  return FailpointRegistry::Instance().Evaluate(name);
}

/// Evaluates a corruption-capable failpoint over the bytes about to be
/// written. Disarmed: OK, bytes untouched (one atomic load). Armed with
/// a corruption spec: when the policy fires, one byte of `buf` is
/// deterministically flipped/zeroed and OK is returned — the write
/// "succeeds", modeling silent media corruption the reader must catch.
/// Armed with a plain error spec: behaves exactly like MaybeFail.
inline Status MaybeCorrupt(std::string_view name, std::string* buf) {
  if (!FailpointRegistry::Active()) return Status::OK();
  return FailpointRegistry::Instance().EvaluateCorrupt(name, buf);
}

/// Declares a failpoint inside a function returning Status or Result<T>:
/// propagates the injected error to the caller when it fires.
#define STRUCTURA_FAILPOINT(name) \
  STRUCTURA_RETURN_IF_ERROR(::structura::MaybeFail(name))

/// RAII arm/disarm: the failpoint is armed for the guard's lifetime.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointRegistry::Spec spec)
      : name_(std::move(name)) {
    FailpointRegistry::Instance().Arm(name_, spec);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// RAII thread-local suppression: code in scope never observes injected
/// failures, even while failpoints stay armed. Used when exercising
/// recovery paths that share code with the faulted path (e.g. reopening
/// a database while a crash failpoint is still armed).
class ScopedFailpointSuppression {
 public:
  ScopedFailpointSuppression() { ++FailpointRegistry::suppression_depth_; }
  ~ScopedFailpointSuppression() { --FailpointRegistry::suppression_depth_; }
  ScopedFailpointSuppression(const ScopedFailpointSuppression&) = delete;
  ScopedFailpointSuppression& operator=(const ScopedFailpointSuppression&) =
      delete;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_FAILPOINT_H_
