#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"

namespace structura {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Gauge callbacks read this pool's state; remove them before any
  // member is torn down.
  UnpublishMetrics();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::PublishMetrics(const std::string& name) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  auto publish = [&](const std::string& stat,
                     std::function<int64_t()> fn) {
    std::string gauge = "threadpool." + name + "." + stat;
    uint64_t id = registry.RegisterGaugeFn(gauge, std::move(fn));
    published_gauges_.emplace_back(std::move(gauge), id);
  };
  publish("queue_depth", [this] {
    return static_cast<int64_t>(stats().queue_depth);
  });
  publish("queue_high_water", [this] {
    return static_cast<int64_t>(stats().queue_high_water);
  });
  publish("active_workers", [this] {
    return static_cast<int64_t>(stats().active_workers);
  });
  publish("dropped_tasks", [this] {
    return static_cast<int64_t>(stats().dropped_tasks);
  });
  publish("rejected_tasks", [this] {
    return static_cast<int64_t>(stats().rejected_tasks);
  });
}

void ThreadPool::UnpublishMetrics() {
  for (const auto& [gauge, id] : published_gauges_) {
    obs::MetricsRegistry::Default().UnregisterGaugeFn(gauge, id);
  }
  published_gauges_.clear();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  wake_.notify_one();
}

void ThreadPool::Post(std::function<void()> fn) { Enqueue(std::move(fn)); }

bool ThreadPool::TryPost(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      ++rejected_tasks_;
      return false;
    }
    queue_.push_back(std::move(fn));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.dropped_tasks = dropped_tasks_;
  s.rejected_tasks = rejected_tasks_;
  s.queue_depth = queue_.size();
  s.queue_high_water = queue_high_water_;
  s.active_workers = active_;
  return s;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    bool threw = false;
    try {
      task();
    } catch (...) {
      // A raw Post()ed task leaked an exception. Letting it escape the
      // worker would std::terminate the process; swallow it, count it,
      // and keep the worker serving. (Submit() tasks never reach here:
      // packaged_task stores their exception in the future.)
      threw = true;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (threw) ++dropped_tasks_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Shared ownership: workers may outlive this call by a few
  // instructions (their final "any work left?" check happens after the
  // completion notify), so the coordination state must not live on this
  // frame. `fn` itself is only invoked for indexes < n, all of which
  // complete before the caller is released — the reference stays valid
  // for every actual call.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  size_t workers = std::min(pool.num_threads(), n);
  for (size_t w = 0; w < workers; ++w) {
    pool.Post([state, n, &fn] {
      while (true) {
        size_t i = state->next.fetch_add(1);
        if (i >= n) break;
        // A throwing body must still count as done, or the caller would
        // wait forever; the first exception is kept and rethrown there.
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state->m);
          if (!state->first_error) {
            state->first_error = std::current_exception();
          }
        }
        if (state->done.fetch_add(1) + 1 == n) {
          std::lock_guard<std::mutex> lock(state->m);
          state->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace structura
