#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"

namespace structura {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queue)
    : max_queue_(max_queue) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  // Gauge callbacks read this pool's state; remove them before any
  // member is torn down.
  UnpublishMetrics();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::PublishMetrics(const std::string& name) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  auto publish = [&](const std::string& stat,
                     std::function<int64_t()> fn) {
    std::string gauge = "threadpool." + name + "." + stat;
    uint64_t id = registry.RegisterGaugeFn(gauge, std::move(fn));
    published_gauges_.emplace_back(std::move(gauge), id);
  };
  publish("queue_depth", [this] {
    return static_cast<int64_t>(stats().queue_depth);
  });
  publish("queue_high_water", [this] {
    return static_cast<int64_t>(stats().queue_high_water);
  });
  publish("active_workers", [this] {
    return static_cast<int64_t>(stats().active_workers);
  });
  publish("dropped_tasks", [this] {
    return static_cast<int64_t>(stats().dropped_tasks);
  });
  publish("rejected_tasks", [this] {
    return static_cast<int64_t>(stats().rejected_tasks);
  });
}

void ThreadPool::UnpublishMetrics() {
  for (const auto& [gauge, id] : published_gauges_) {
    obs::MetricsRegistry::Default().UnregisterGaugeFn(gauge, id);
  }
  published_gauges_.clear();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  wake_.notify_one();
}

void ThreadPool::Post(std::function<void()> fn) { Enqueue(std::move(fn)); }

bool ThreadPool::TryPost(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_queue_ > 0 && queue_.size() >= max_queue_) {
      ++rejected_tasks_;
      return false;
    }
    queue_.push_back(std::move(fn));
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
  }
  wake_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.dropped_tasks = dropped_tasks_;
  s.rejected_tasks = rejected_tasks_;
  s.queue_depth = queue_.size();
  s.queue_high_water = queue_high_water_;
  s.active_workers = active_;
  return s;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    bool threw = false;
    try {
      task();
    } catch (...) {
      // A raw Post()ed task leaked an exception. Letting it escape the
      // worker would std::terminate the process; swallow it, count it,
      // and keep the worker serving. (Submit() tasks never reach here:
      // packaged_task stores their exception in the future.)
      threw = true;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (threw) ++dropped_tasks_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

namespace {

// Shared coordination state for one ParallelFor call. Heap-allocated
// (shared_ptr) because continuation tasks may still sit in the pool
// queue for a few instructions after the caller is released — they must
// be able to observe "nothing left" without touching a dead frame. `fn`
// is only ever invoked for indexes < n, all of which complete before
// the caller unblocks, so the pointer stays valid for every actual
// call; post-completion stragglers read the atomics and return.
struct PfState {
  size_t n = 0;
  size_t grain = 0;
  const std::function<void(size_t)>* fn = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex m;
  std::condition_variable cv;
  std::exception_ptr first_error;
};

// One scheduling quantum of the loop: claim indexes until the range is
// exhausted or `grain` bodies have run, then re-post a *fresh*
// continuation lambda to the back of the queue so concurrently Post()ed
// tasks get a turn. A new lambda each time — a task capturing a
// shared_ptr to a closure that contains itself would be a reference
// cycle and leak.
void RunChain(ThreadPool& pool, const std::shared_ptr<PfState>& s) {
  size_t ran = 0;
  while (true) {
    size_t i = s->next.fetch_add(1);
    if (i >= s->n) return;
    // A throwing body must still count as done, or the caller would
    // wait forever; the first exception is kept and rethrown there.
    try {
      (*s->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(s->m);
      if (!s->first_error) s->first_error = std::current_exception();
    }
    if (s->done.fetch_add(1) + 1 == s->n) {
      std::lock_guard<std::mutex> lock(s->m);
      s->cv.notify_all();
      return;
    }
    if (s->grain > 0 && ++ran >= s->grain) {
      // Yield: anything enqueued while this quantum ran goes first. The
      // pool outlives the continuation (destruction drains the queue),
      // and a continuation arriving after completion claims an index
      // >= n and returns without touching `fn`.
      pool.Post([&pool, s] { RunChain(pool, s); });
      return;
    }
  }
}

}  // namespace

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(pool, n, ParallelForOptions{}, fn);
}

void ParallelFor(ThreadPool& pool, size_t n, const ParallelForOptions& opts,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  auto state = std::make_shared<PfState>();
  state->n = n;
  state->grain = opts.grain;
  state->fn = &fn;
  size_t workers = std::min(pool.num_threads(), n);
  if (opts.max_workers > 0) workers = std::min(workers, opts.max_workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.Post([&pool, state] { RunChain(pool, state); });
  }
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace structura
