#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace structura {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(fn));
  }
  wake_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Shared ownership: workers may outlive this call by a few
  // instructions (their final "any work left?" check happens after the
  // completion notify), so the coordination state must not live on this
  // frame. `fn` itself is only invoked for indexes < n, all of which
  // complete before the caller is released — the reference stays valid
  // for every actual call.
  struct State {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex m;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  size_t workers = std::min(pool.num_threads(), n);
  for (size_t w = 0; w < workers; ++w) {
    pool.Submit([state, n, &fn] {
      while (true) {
        size_t i = state->next.fetch_add(1);
        if (i >= n) break;
        fn(i);
        if (state->done.fetch_add(1) + 1 == n) {
          std::lock_guard<std::mutex> lock(state->m);
          state->cv.notify_all();
        }
      }
    });
  }
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->done.load() == n; });
}

}  // namespace structura
