#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cerrno>

namespace structura {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitAndTrim(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(s, sep)) {
    std::string_view t = Trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(
      std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsNumber(std::string_view s) {
  double unused;
  return ParseDouble(s, &unused);
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf, &end);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty() || s.size() > 63) return false;
  char buf[64];
  s.copy(buf, s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + s.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace structura
