#ifndef STRUCTURA_COMMON_CLOCK_H_
#define STRUCTURA_COMMON_CLOCK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace structura {

/// Injectable time source, the second half of the simulation boundary
/// that Env opened for storage I/O: everything timing-dependent
/// (deadlines, breaker cooldowns, group-commit windows, retry backoff,
/// the watchdog tick) reads time and sleeps through a Clock so tests
/// can swap in SimulatedClock and make timing deterministic — a
/// 30-second brownout plays out in microseconds, and two runs with the
/// same seed schedule identically.
///
/// Time is a raw monotonic nanosecond count, not a time_point: a
/// simulated clock has no epoch relationship with steady_clock, so
/// exposing one would invite mixing the two.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Process-wide real (steady_clock) implementation.
  static Clock* Real();
  /// Resolves the ubiquitous "nullptr means real time" option default.
  static Clock* OrReal(Clock* clock) { return clock ? clock : Real(); }

  /// Monotonic now, in nanoseconds. Starts at an arbitrary positive
  /// value; only differences are meaningful.
  virtual int64_t NowNanos() = 0;

  /// Blocks the caller for `nanos` of *this clock's* time. A simulated
  /// clock in auto-advance mode returns immediately after bumping time.
  virtual void SleepForNanos(int64_t nanos) = 0;

  /// cv.wait_for against this clock: blocks until notified or until
  /// `nanos` of clock time passed. Spurious wakeups are allowed (as
  /// with the raw primitive); callers loop on their predicate. `lock`
  /// must be held, as for condition_variable::wait_for.
  virtual std::cv_status WaitFor(std::condition_variable& cv,
                                 std::unique_lock<std::mutex>& lock,
                                 int64_t nanos) = 0;

  void SleepForMillis(uint64_t ms) {
    SleepForNanos(static_cast<int64_t>(ms) * 1'000'000);
  }
  void SleepForMicros(uint64_t us) {
    SleepForNanos(static_cast<int64_t>(us) * 1'000);
  }

  /// wait_for with a predicate: returns the predicate's value at exit
  /// (true = condition met, false = timed out first).
  template <typename Pred>
  bool WaitForPred(std::condition_variable& cv,
                   std::unique_lock<std::mutex>& lock, int64_t nanos,
                   Pred pred) {
    int64_t deadline = NowNanos() + nanos;
    while (!pred()) {
      int64_t left = deadline - NowNanos();
      if (left <= 0) return pred();
      WaitFor(cv, lock, left);
    }
    return true;
  }
};

/// Deterministic test clock. Two modes:
///
///  - auto-advance (default): SleepForNanos and WaitFor timeouts
///    advance simulated time by the full amount immediately, so code
///    that sleeps or waits out a timer runs at full speed. WaitFor
///    still performs one short *real* wait slice so cross-thread
///    notifications keep working — a waiter observes either its (now
///    already elapsed) timeout or the notification, and predicate
///    loops terminate promptly either way.
///  - manual: time moves only through AdvanceNanos/AdvanceMillis;
///    sleepers and waiters block until the clock passes their wakeup
///    point. For tests that step time across an exact boundary (e.g.
///    "one nanosecond before the breaker cooldown expires").
///
/// Concurrent auto-advance uses advance-to-max, so two threads
/// sleeping 10ms from the same instant both wake at +10ms (not +20ms),
/// matching real time.
class SimulatedClock : public Clock {
 public:
  struct Options {
    bool auto_advance = true;
    /// Real-time slice of each WaitFor in auto-advance mode.
    int64_t real_wait_slice_nanos = 200'000;  // 0.2ms
  };

  SimulatedClock() : SimulatedClock(Options{}) {}
  explicit SimulatedClock(Options options);

  int64_t NowNanos() override { return now_.load(std::memory_order_acquire); }
  void SleepForNanos(int64_t nanos) override;
  std::cv_status WaitFor(std::condition_variable& cv,
                         std::unique_lock<std::mutex>& lock,
                         int64_t nanos) override;

  /// Moves time forward and wakes blocked sleepers (manual mode).
  void AdvanceNanos(int64_t nanos);
  void AdvanceMillis(uint64_t ms) {
    AdvanceNanos(static_cast<int64_t>(ms) * 1'000'000);
  }

 private:
  /// Atomically raises now_ to at least `target`.
  void RaiseTo(int64_t target);

  Options options_;
  std::atomic<int64_t> now_;
  std::mutex mutex_;
  std::condition_variable advanced_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_CLOCK_H_
