#ifndef STRUCTURA_COMMON_RECORDIO_H_
#define STRUCTURA_COMMON_RECORDIO_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace structura {

/// Shared on-disk record framing for the append-only stores (WAL,
/// segment store). Every record is wrapped as
///
///   [magic 8B][payload_len u32][payload_crc32c u32][header_crc32c u32]
///   [payload bytes]
///
/// The magic doubles as a resync marker: a reader that finds a damaged
/// frame (bit-rot anywhere in header or payload) can scan forward for
/// the next magic whose header *and* payload checksums validate, and
/// continue from there. That turns "one flipped byte truncates the rest
/// of the file" into "one flipped byte loses one frame" — the reader
/// reports exactly which byte ranges were lost so the storage layer can
/// drop the affected transactions atomically. The header CRC lets a
/// reader distinguish a corrupted length field from a genuinely torn
/// tail instead of trusting a garbage length.
inline constexpr size_t kFrameMagicBytes = 8;
inline constexpr size_t kFrameHeaderBytes = kFrameMagicBytes + 12;
extern const char kFrameMagic[kFrameMagicBytes];

/// Appends one framed record to `out`.
void AppendFrame(std::string_view payload, std::string* out);

/// Returns `payload` wrapped in a frame.
std::string FrameRecord(std::string_view payload);

/// What a full pass over a framed buffer found.
struct FrameScanReport {
  static constexpr uint64_t kNoDamage =
      std::numeric_limits<uint64_t>::max();

  uint64_t frames_valid = 0;
  /// Valid frames recovered *after* the first damaged region — records
  /// the pre-resync reader would have silently dropped.
  uint64_t frames_salvaged = 0;
  /// Damaged regions skipped mid-file by resyncing to a later frame.
  uint64_t damaged_regions = 0;
  /// Byte ranges [begin, end) lost to mid-file damage.
  std::vector<std::pair<uint64_t, uint64_t>> lost_ranges;
  /// Trailing bytes with no later valid frame: a torn write (or damage
  /// so close to the end that nothing could be resynced past it). The
  /// store may safely truncate the file at `torn_tail_offset`.
  bool torn_tail = false;
  uint64_t torn_tail_offset = 0;
  uint64_t torn_tail_bytes = 0;
  /// File offset of the first damaged byte region, kNoDamage when clean.
  uint64_t first_damage_offset = kNoDamage;

  bool clean() const { return damaged_regions == 0 && !torn_tail; }
};

/// Iterates the valid frames of an in-memory buffer, resyncing past
/// damage. Usage:
///   FrameReader reader(bytes);
///   while (auto frame = reader.Next()) use(frame->payload);
///   const FrameScanReport& report = reader.report();
class FrameReader {
 public:
  explicit FrameReader(std::string_view buffer) : buf_(buffer) {}

  struct Frame {
    std::string_view payload;
    uint64_t offset = 0;       // frame start within the buffer
    bool after_damage = false; // a damaged region immediately precedes
  };

  /// Next valid frame, or nullopt at end of buffer. The report is
  /// complete once this returns nullopt.
  std::optional<Frame> Next();

  const FrameScanReport& report() const { return report_; }

 private:
  bool ValidFrameAt(size_t pos, uint32_t* len) const;

  std::string_view buf_;
  size_t pos_ = 0;
  FrameScanReport report_;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_RECORDIO_H_
