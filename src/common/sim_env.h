#ifndef STRUCTURA_COMMON_SIM_ENV_H_
#define STRUCTURA_COMMON_SIM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/env.h"

namespace structura {

/// Crash-simulation Env in the FoundationDB mold: deterministic power
/// cuts with POSIX crash semantics, every outcome reproducible from a
/// single seed.
///
/// The env interposes on every write-side operation and keeps, per
/// file, the *durability ledger* a real kernel keeps implicitly:
///
///  - the synced prefix (bytes covered by a successful Sync) vs. the
///    unsynced buffered tail (each Append since, recorded separately
///    so a crash can drop an arbitrary suffix of them);
///  - whether an O_TRUNC truncation has been fsynced yet (until then a
///    crash may resurrect the pre-truncate image);
///  - directory-entry durability: a create, rename, or remove counts
///    as durable only once `SyncDir` covered its parent directory.
///    Until then it sits in a pending-op journal and a crash may undo
///    it — a rename reverts to the old destination file, a create
///    vanishes, a remove resurrects.
///
/// Because the repo's read paths (recovery, scans) read real files
/// directly, writes are passed through to the real directory while the
/// ledger shadows them; `CrashAndRecover` then *rewrites the real
/// files to the computed surviving image*, which is exactly the
/// page-cache model: reads before the crash see buffered bytes, reads
/// after it see only what was made durable.
///
/// Power cuts are scheduled by operation index (`CutAtOp`) or sync
/// index (`CutAtSync`), or fired immediately (`PowerCut`). Once the
/// power is off every operation fails with kIoError until
/// `CrashAndRecover` turns the machine back on over the surviving
/// bytes. An Append killed by the cut is the "interrupted write": its
/// payload was in flight and may survive torn.
///
/// Files mutated outside the env (recovery-time truncations, direct
/// filesystem calls) are adopted at the next env touch with their
/// current real content as the durable baseline.
class SimulatedEnv : public Env {
 public:
  /// `base` performs the real I/O under the simulation (defaults to
  /// Env::Default()); it must outlive this env.
  explicit SimulatedEnv(Env* base = nullptr);

  // --- Env interface -------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;

  // --- power-cut scheduling ------------------------------------------

  /// Cut power when the `n`-th (1-based) env operation starts: that
  /// operation fails and everything after it is refused. Operations
  /// are opens, appends, syncs, renames, dir-syncs, and removes.
  void CutAtOp(uint64_t n);

  enum class CutFlavor {
    /// The `n`-th sync itself fails — nothing it covered is durable.
    kBeforeSync,
    /// The `n`-th sync completes (and is acknowledged), then the power
    /// dies before anything else happens.
    kAfterSync,
  };
  /// Cut power at the `n`-th (1-based) durability point (file Sync or
  /// SyncDir).
  void CutAtSync(uint64_t n, CutFlavor flavor);

  /// Immediate power loss.
  void PowerCut();

  bool PoweredOff() const;
  /// Env operations / durability points executed so far. A clean
  /// no-cut run measures the sweep space: every index in
  /// [1, SyncCount()] is a sync boundary to crash at.
  uint64_t OpCount() const;
  uint64_t SyncCount() const;

  // --- crash & recovery ----------------------------------------------

  struct CrashOptions {
    uint64_t seed = 0;
    /// Per-write chance that the next buffered-but-unsynced write
    /// reached disk anyway. Survival is a per-file *prefix* of the
    /// unsynced writes (the kernel flushes in order within a file);
    /// independent draws across files model cross-file reordering.
    /// 0.0 = strict: every unsynced byte is lost.
    double unsynced_survival = 0.0;
    /// Per-op chance that an unfenced metadata op (create / rename /
    /// remove awaiting SyncDir) hit the journal anyway. Also a prefix,
    /// per directory. 0.0 = strict: every unfenced op is undone.
    double unfenced_meta_survival = 0.0;
    /// When true, the first *lost* write of a file may survive
    /// partially: a seeded prefix, cut at a random byte or (seeded
    /// coin) a 512-byte sector boundary.
    bool torn_writes = false;
    /// Exact surviving byte count for the interrupted write (the
    /// Append the power cut killed), for byte-by-byte torn-tail
    /// sweeps. -1 = seeded per `torn_writes`. Applies only when every
    /// write before it survived.
    int64_t forced_tear_bytes = -1;
  };

  struct CrashReport {
    uint64_t files_tracked = 0;
    uint64_t writes_dropped = 0;
    uint64_t writes_survived = 0;
    uint64_t writes_torn = 0;
    uint64_t truncates_reverted = 0;
    uint64_t meta_ops_reverted = 0;
    uint64_t meta_ops_survived = 0;
    /// Durability hazards pending at the moment of the crash (see
    /// PendingHazards()).
    std::vector<std::string> hazards;
    std::string ToString() const;
  };

  /// Simulates the power loss outcome: computes each file's surviving
  /// image under `opts` (seeded, deterministic), rewrites the real
  /// files to match, forgets all tracking, and turns the power back
  /// on. Call after a cut fired (or it calls PowerCut() itself).
  /// The old System must be torn down first; recovery then opens a
  /// fresh one over the surviving bytes.
  CrashReport CrashAndRecover(const CrashOptions& opts);

  /// Human-readable list of operations that would not survive a crash
  /// right now: renames, creates, and removes not yet fenced by a
  /// SyncDir of their parent directory. A well-disciplined quiescent
  /// system has none; `AtomicReplaceFile` leaves none behind.
  std::vector<std::string> PendingHazards() const;

 private:
  friend class SimWritableFile;

  struct FileState {
    /// Content guaranteed by the last successful Sync (assuming any
    /// pending truncate also made it to disk).
    std::string durable;
    /// Appends since, in order; a crash keeps a prefix of these.
    std::vector<std::string> unsynced;
    /// The last unsynced write was killed mid-flight by the cut; it
    /// can survive only torn, never whole.
    bool last_write_interrupted = false;
    /// An O_TRUNC happened after the last Sync; if the crash loses it
    /// the file reverts to `pre_truncate` and all unsynced writes are
    /// void (their offsets presumed the truncation).
    bool truncate_pending = false;
    std::string pre_truncate;
  };

  enum class MetaKind { kCreate, kRename, kRemove };
  struct MetaOp {
    MetaKind kind;
    std::string path;  // created/removed path, or rename destination
    std::string from;  // rename source
    /// Prior state of the destination (rename) or the removed file,
    /// for revert. nullopt: the destination did not exist.
    std::optional<FileState> saved;
    /// Parent directories whose SyncDir must all land before the op is
    /// durable.
    std::vector<std::string> dirs;
  };

  enum class Gate { kProceed, kAlreadyOff, kCutNow };

  /// Counts the op and decides its fate under the armed cut. Call with
  /// mu_ held.
  Gate EnterOpLocked();
  /// As EnterOpLocked but also counts a durability point and applies
  /// kBeforeSync cuts.
  Gate EnterSyncLocked();
  /// Applies a pending kAfterSync cut once the sync completed.
  void LeaveSyncLocked();
  Status PowerLossError() const;

  /// Tracked state for `path`, adopting the real file's bytes as the
  /// durable baseline if the env has not seen it before. nullopt: no
  /// such file on disk either.
  std::optional<FileState> TakeStateLocked(const std::string& path);

  // WritableFile backends (called via SimWritableFile).
  Status FileAppend(const std::string& path, WritableFile* base,
                    std::string_view data);
  Status FileSync(const std::string& path, WritableFile* base);
  Status FileFlush(WritableFile* base);
  Status FileClose(WritableFile* base);

  std::vector<std::string> PendingHazardsLocked() const;

  Env* base_;
  mutable std::mutex mu_;
  /// Ordered map so crash computation iterates files deterministically.
  std::map<std::string, FileState> files_;
  std::vector<MetaOp> journal_;
  bool powered_off_ = false;
  uint64_t op_count_ = 0;
  uint64_t sync_count_ = 0;
  uint64_t cut_at_op_ = 0;  // 0 = unarmed
  uint64_t cut_at_sync_ = 0;
  CutFlavor cut_flavor_ = CutFlavor::kBeforeSync;
};

}  // namespace structura

#endif  // STRUCTURA_COMMON_SIM_ENV_H_
