#ifndef STRUCTURA_COMMON_STATUS_H_
#define STRUCTURA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace structura {

/// Machine-readable error categories used across the library. Functions that
/// can fail return `Status` (or `Result<T>` when they also produce a value)
/// instead of throwing exceptions across API boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kAborted,        // e.g. transaction aborted due to deadlock
  kCorruption,     // on-disk data failed validation
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kDeadlineExceeded,  // request ran past its deadline
  kCancelled,         // caller cancelled the request
  kUnavailable,       // shed under overload / breaker open; retryable later
  kIoError,           // storage syscall failed (EIO, failed fsync, ...)
};

/// Returns a stable lowercase name for `code` (e.g. "not_found").
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. The OK status carries no
/// allocation; error statuses carry a code and a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code_name>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Accessing `value()` on an error result aborts
/// the process (programming error), so callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return 42;` or `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller. Use inside functions returning
/// `Status` or `Result<T>`.
#define STRUCTURA_RETURN_IF_ERROR(expr)                  \
  do {                                                   \
    ::structura::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                           \
  } while (0)

/// Evaluates a `Result<T>` expression and either binds its value to `lhs`
/// or propagates the error.
#define STRUCTURA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define STRUCTURA_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define STRUCTURA_ASSIGN_OR_RETURN_NAME(a, b) STRUCTURA_ASSIGN_OR_RETURN_CAT(a, b)
#define STRUCTURA_ASSIGN_OR_RETURN(lhs, expr)            \
  STRUCTURA_ASSIGN_OR_RETURN_IMPL(                       \
      STRUCTURA_ASSIGN_OR_RETURN_NAME(_res_, __LINE__), lhs, expr)

}  // namespace structura

#endif  // STRUCTURA_COMMON_STATUS_H_
