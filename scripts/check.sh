#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# ASan+UBSan (STRUCTURA_SANITIZE=address,undefined), then the
# concurrency-sensitive tests under TSan (STRUCTURA_SANITIZE=thread).
# Run from anywhere; builds land in build/, build-asan/, and
# build-tsan/ at the repo root.
#
# Usage: scripts/check.sh [ctest-args...]
#   e.g. scripts/check.sh -R RecoverySweep
# Explicit ctest args apply to every leg, including the TSan one.
# -E so the ERR trap below fires for failures inside run_suite too.
set -Eeuo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "${CTEST_ARGS[@]}"
}

CTEST_ARGS=("$@")

# On test failure the chaos/degradation suites dump a Prometheus metrics
# snapshot and the health-model JSON here (see DumpArtifactsOnFailure in
# tests/serve_chaos_test.cc) so a red run is debuggable after the fact.
export STRUCTURA_ARTIFACT_DIR="${STRUCTURA_ARTIFACT_DIR:-$repo_root/build-artifacts}"
mkdir -p "$STRUCTURA_ARTIFACT_DIR"

# On any red leg, point straight at the forensics: failure dumps from
# the test suites plus any flight-recorder incident bundles
# (incident_*_<trigger>/ directories with MANIFEST.json, metrics,
# health, the event journal tail, and expensive-request span trees).
on_failure() {
  echo "==> FAILED — diagnostics in $STRUCTURA_ARTIFACT_DIR" >&2
  find "$STRUCTURA_ARTIFACT_DIR" -mindepth 1 -maxdepth 1 2>/dev/null \
    | sed 's/^/    /' >&2 || true
}
trap on_failure ERR

echo "==> plain build + tests"
run_suite "$repo_root/build"

echo "==> randomized crash-simulation sweep (time-seeded)"
# The deterministic boundary sweep (power-cut at every sync boundary)
# already ran above as part of tier-1; this leg is the long randomized
# sweep, labelled `sim` so it can scale independently. Seeding from the
# wall clock makes every invocation explore fresh cut points; a failure
# prints the exact STRUCTURA_SIM_SEED/STRUCTURA_SIM_CUT pair and drops
# the repro line into STRUCTURA_ARTIFACT_DIR, so any red run replays
# verbatim with no other state.
STRUCTURA_SIM_SEED="${STRUCTURA_SIM_SEED:-$(date +%s)}" \
STRUCTURA_SIM_ROUNDS="${STRUCTURA_SIM_ROUNDS:-100}" \
  ctest --test-dir "$repo_root/build" --output-on-failure -L sim

echo "==> morsel-parallel differential + cache-coherence sweeps"
# Seeded random-plan differential (parallel == serial, byte-for-byte)
# and the result-cache coherence property sweep, labelled `parallel`.
# Failures print the exact STRUCTURA_PARALLEL_SEED / STRUCTURA_CACHE_SEED
# to replay.
STRUCTURA_PARALLEL_ITERS="${STRUCTURA_PARALLEL_ITERS:-1000}" \
STRUCTURA_CACHE_ITERS="${STRUCTURA_CACHE_ITERS:-1000}" \
  ctest --test-dir "$repo_root/build" --output-on-failure -L parallel

echo "==> address+undefined sanitizer build + tests"
run_suite "$repo_root/build-asan" -DSTRUCTURA_SANITIZE=address,undefined

echo "==> storage-integrity byte-flip sweep under ASan/UBSan"
# Explicit leg so the corruption sweep always runs sanitized even when
# the caller narrowed CTEST_ARGS above.
ctest --test-dir "$repo_root/build-asan" --output-on-failure -j "$jobs" \
  -R 'IntegritySweep'

echo "==> durability fault-injection sweep under ASan/UBSan"
# Explicit leg for the env-level fault sweep (ENOSPC/EIO/short
# writes/failed fsync at every syscall site): acked-then-lost bugs and
# the sticky-failure rule are exactly what ASan-visible lifetime bugs
# hide behind.
ctest --test-dir "$repo_root/build-asan" --output-on-failure -j "$jobs" \
  -R 'DurabilitySweep'

echo "==> thread sanitizer build + concurrency tests"
if [[ ${#CTEST_ARGS[@]} -eq 0 ]]; then
  # Default to the suites that exercise real concurrency: the serving
  # chaos harness, thread pool, map-reduce, the locking/txn layer, and
  # the metrics/tracing hot paths (sharded atomics + lock-free rings).
  CTEST_ARGS=(-R 'ServeChaos|CircuitBreaker|Frontend|ThreadPool|MapReduce|Concurren|Lock|Metrics|Trace|Exposition|Logging|ParallelExec|ResultCache')
fi
run_suite "$repo_root/build-tsan" -DSTRUCTURA_SANITIZE=thread

echo "==> morsel-parallel + cache sweeps under TSan"
# The differential and coherence sweeps are where executor/cache races
# would actually surface; run them sanitized every time, even when the
# caller narrowed CTEST_ARGS above.
STRUCTURA_PARALLEL_ITERS="${STRUCTURA_PARALLEL_TSAN_ITERS:-200}" \
STRUCTURA_CACHE_ITERS="${STRUCTURA_CACHE_TSAN_ITERS:-200}" \
  ctest --test-dir "$repo_root/build-tsan" --output-on-failure -L parallel

echo "==> degraded-mode chaos leg under TSan"
# Explicit leg so the graceful-degradation machinery (health model,
# brownout, fallback ladder, watchdog self-heal) always runs sanitized
# even when the caller narrowed CTEST_ARGS above: the failure modes here
# are races between the watchdog's Evaluate and frontend teardown.
ctest --test-dir "$repo_root/build-tsan" --output-on-failure -j "$jobs" \
  -R 'ServeChaos|Health|Brownout|Watchdog|Degrad|Fallback|Priority|HybridSearch'

echo "==> all checks passed"
