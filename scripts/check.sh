#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# ASan+UBSan (STRUCTURA_SANITIZE=address,undefined), then the
# concurrency-sensitive tests under TSan (STRUCTURA_SANITIZE=thread).
# Run from anywhere; builds land in build/, build-asan/, and
# build-tsan/ at the repo root.
#
# Usage: scripts/check.sh [ctest-args...]
#   e.g. scripts/check.sh -R RecoverySweep
# Explicit ctest args apply to every leg, including the TSan one.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$repo_root" "$@"
  cmake --build "$build_dir" -j "$jobs"
  ctest --test-dir "$build_dir" --output-on-failure -j "$jobs" "${CTEST_ARGS[@]}"
}

CTEST_ARGS=("$@")

echo "==> plain build + tests"
run_suite "$repo_root/build"

echo "==> address+undefined sanitizer build + tests"
run_suite "$repo_root/build-asan" -DSTRUCTURA_SANITIZE=address,undefined

echo "==> storage-integrity byte-flip sweep under ASan/UBSan"
# Explicit leg so the corruption sweep always runs sanitized even when
# the caller narrowed CTEST_ARGS above.
ctest --test-dir "$repo_root/build-asan" --output-on-failure -j "$jobs" \
  -R 'IntegritySweep'

echo "==> thread sanitizer build + concurrency tests"
if [[ ${#CTEST_ARGS[@]} -eq 0 ]]; then
  # Default to the suites that exercise real concurrency: the serving
  # chaos harness, thread pool, map-reduce, the locking/txn layer, and
  # the metrics/tracing hot paths (sharded atomics + lock-free rings).
  CTEST_ARGS=(-R 'ServeChaos|CircuitBreaker|Frontend|ThreadPool|MapReduce|Concurren|Lock|Metrics|Trace|Exposition|Logging')
fi
run_suite "$repo_root/build-tsan" -DSTRUCTURA_SANITIZE=thread

echo "==> all checks passed"
