// Semantic debugging + provenance: Part V and Part VI of the blueprint.
//
// The paper's example: "if this module has learned that the monthly
// temperature of a city cannot exceed 130 degrees, then it can flag an
// extracted temperature of 135 as suspicious." We corrupt a crawl with
// digit typos, let the debugger learn constraints from the extracted
// facts themselves, inspect what it flags, and use provenance to answer
// "why does the system believe this value?" for a flagged fact.

#include <cstdio>

#include "core/system.h"
#include "corpus/generator.h"

using structura::core::System;

int main() {
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 50;
  corpus_options.num_people = 40;
  corpus_options.num_companies = 10;
  corpus_options.infobox_dropout = 0.4;  // many values only in free text
  corpus_options.typo_prob = 0.15;       // ... where typos lurk
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);

  auto sys = std::move(System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(docs).ok();
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
         "population_sentence, founded_sentence, elevation_sentence "
         "FROM pages;")
      .value();
  sys->BuildBeliefsFromView("facts").ok();

  // Learn constraints from the data, then audit the same data.
  auto violations = sys->AuditFacts();
  std::printf("learned constraints over %zu attributes (ranges) and %zu "
              "(formats)\n",
              sys->semantic_debugger().ranges().size(),
              sys->semantic_debugger().formats().size());
  std::printf("\n== %zu suspicious facts flagged ==\n", violations.size());
  size_t shown = 0;
  for (const auto& v : violations) {
    if (++shown > 8) {
      std::printf("  ... and %zu more\n", violations.size() - 8);
      break;
    }
    std::printf("  %s.%s = %s\n      %s\n", v.subject.c_str(),
                v.attribute.c_str(), v.value.c_str(), v.message.c_str());
  }

  // Learned range for a temperature attribute — the "cannot exceed 130
  // degrees" knowledge, induced rather than hand-written.
  auto it = sys->semantic_debugger().ranges().find("temp_07");
  if (it != sys->semantic_debugger().ranges().end()) {
    std::printf("\nlearned: July temperature plausible range is "
                "[%.0f, %.0f] (from %zu samples)\n",
                it->second.lo, it->second.hi, it->second.support);
  }

  // Provenance for the first flagged fact: which page and extractor put
  // that value into the system?
  if (!violations.empty()) {
    const auto& v = violations.front();
    auto why = sys->Explain(v.subject, v.attribute);
    if (why.ok()) {
      std::printf("\n== provenance of flagged %s.%s ==\n%s",
                  v.subject.c_str(), v.attribute.c_str(), why->c_str());
    }
  }

  // Check the flags against ground truth: how many flagged values are
  // genuinely wrong?
  size_t truly_wrong = 0;
  for (const auto& v : violations) {
    for (const auto& f : truth.facts) {
      auto name = truth.canonical_names.find(f.entity);
      if (name == truth.canonical_names.end()) continue;
      if (name->second == v.subject && f.attribute == v.attribute) {
        std::string normalized;
        for (char c : v.value) {
          if (c != ',') normalized += c;
        }
        std::string want;
        for (char c : f.value) {
          if (c != ',') want += c;
        }
        if (normalized != want) ++truly_wrong;
        break;
      }
    }
  }
  if (!violations.empty()) {
    std::printf("\nflag precision vs ground truth: %zu/%zu = %.2f\n",
                truly_wrong, violations.size(),
                static_cast<double>(truly_wrong) / violations.size());
  }
  std::printf("monitor: %s\n", sys->monitor().Report().c_str());
  return 0;
}
