// Beyond unstructured text — Section 6 of the paper: "sensor data from
// which we want to infer real-world events (e.g., someone has entered
// the room) ... The end system then may end up looking quite similar to
// the kind of systems we have discussed for unstructured data."
//
// Here the *same* fact/belief machinery that digests wiki text digests a
// noisy sensor trace: a rule extractor turns raw readings into event
// facts, beliefs aggregate them, and the usual scoring applies.

#include <cstdio>
#include <map>

#include "sensors/sensor_events.h"
#include "uncertainty/confidence.h"

using namespace structura;

int main() {
  sensors::TraceOptions options;
  options.rooms = 4;
  options.events_per_room = 8;
  options.duration = 1500;
  options.glitch_rate = 0.02;
  sensors::SensorTrace trace;
  std::vector<sensors::EventTruth> truth;
  sensors::GenerateTrace(options, &trace, &truth);
  std::printf("trace: %zu readings from %zu rooms, %zu hidden events\n",
              trace.readings.size(), options.rooms, truth.size());

  sensors::EventExtractor extractor;
  auto facts = extractor.Extract(trace);
  std::printf("extracted %zu event facts\n\n", facts.size());

  // A few sample events, exactly the shape text extraction produces.
  for (size_t i = 0; i < facts.size() && i < 5; ++i) {
    std::printf("  %s.%s at t=%s (confidence %.2f, via %s)\n",
                facts[i].subject.c_str(), facts[i].attribute.c_str(),
                facts[i].value.c_str(), facts[i].confidence,
                facts[i].extractor.c_str());
  }

  sensors::EventScore score = sensors::ScoreEvents(facts, truth);
  std::printf("\nvs ground truth: P=%.2f R=%.2f F1=%.2f\n",
              score.precision(), score.recall(), score.f1());

  // The shared downstream machinery: beliefs per (room, event type).
  ie::FactSet set;
  for (auto& f : facts) set.Add(std::move(f));
  auto beliefs = uncertainty::BuildBeliefs(set);
  std::map<std::string, size_t> per_room;
  for (const auto& b : beliefs) ++per_room[b.subject];
  std::printf("\nbeliefs per room (same layer text facts flow into):\n");
  for (const auto& [room, n] : per_room) {
    std::printf("  %-8s %zu event-time beliefs\n", room.c_str(), n);
  }
  return 0;
}
