// Interactive SDL shell — the "command-line interface (for sophisticated
// users)" in the paper's user layer. Boots the system over a synthetic
// wiki slice and reads SDL statements from stdin.
//
//   $ ./sdl_shell
//   sdl> CREATE VIEW facts AS EXTRACT infobox FROM pages WHERE
//        category = "City";
//   sdl> SELECT subject, value FROM facts WHERE attribute = "population"
//        ORDER BY value DESC LIMIT 5;
//   sdl> EXPLAIN SELECT ...;
//   sdl> \search average temperature madison     (keyword mode)
//   sdl> \forms average temperature madison      (keyword -> structured)
//   sdl> \views   \help   \quit
//
// Statements may span lines and end with ';'.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/system.h"
#include "corpus/generator.h"
#include "query/browse.h"

using structura::core::System;

namespace {

void PrintHelp() {
  std::printf(
      "SDL statements end with ';'. Examples:\n"
      "  CREATE VIEW v AS EXTRACT infobox, temp_sentence FROM pages\n"
      "    WHERE category = \"City\";\n"
      "  CREATE VIEW e AS RESOLVE ENTITIES FROM v USING name\n"
      "    THRESHOLD 0.8 WITH HUMAN REVIEW BUDGET 20;\n"
      "  REFRESH VIEW v;\n"
      "  SELECT subject, AVG(value) AS t FROM v GROUP BY subject\n"
      "    ORDER BY t DESC LIMIT 5;\n"
      "  EXPLAIN SELECT ...;\n"
      "Shell commands:\n"
      "  \\search <keywords>   BM25 document search with snippets\n"
      "  \\forms <keywords>    suggested structured queries\n"
      "  \\browse <entity>     entity profile from current beliefs\n"
      "  \\views               list materialized views\n"
      "  \\status              system status report\n"
      "  \\help                this text\n"
      "  \\quit                exit\n");
}

}  // namespace

int main() {
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 40;
  corpus_options.num_people = 60;
  corpus_options.num_companies = 12;
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);

  auto sys = std::move(System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(docs).ok();
  std::printf(
      "structura sdl shell — %zu documents loaded; \\help for help\n",
      docs.size());

  std::string buffer;
  std::string line;
  std::printf("sdl> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    // Shell commands act immediately.
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      std::string cmd = line.substr(1);
      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "status") {
        std::printf("%s", sys->StatusReport().c_str());
      } else if (cmd == "views") {
        for (const auto& [name, rel] : sys->context().views) {
          std::printf("  %-20s %zu rows, %zu columns\n", name.c_str(),
                      rel.size(), rel.columns().size());
        }
      } else if (cmd.rfind("search ", 0) == 0) {
        std::string keywords = cmd.substr(7);
        for (const auto& hit : sys->KeywordSearch(keywords, 5)) {
          std::printf("  %-30s score=%.2f\n", hit.title.c_str(),
                      hit.score);
          for (const auto& doc : sys->documents().docs) {
            if (doc.id == hit.doc) {
              std::printf("    %s\n",
                          structura::query::MakeSnippet(doc, keywords)
                              .c_str());
              break;
            }
          }
        }
      } else if (cmd.rfind("browse ", 0) == 0) {
        if (!sys->context().views.empty() && sys->beliefs().empty()) {
          sys->BuildBeliefsFromView(
                 sys->context().views.rbegin()->first)
              .ok();
        }
        auto profile = structura::query::BuildProfile(sys->beliefs(),
                                                      cmd.substr(7));
        if (!profile.ok()) {
          std::printf("  %s\n", profile.status().ToString().c_str());
        } else {
          std::printf("%s",
                      structura::query::RenderProfile(*profile).c_str());
          auto incoming = structura::query::ReferencedBy(sys->beliefs(),
                                                         cmd.substr(7));
          for (const auto& [who, how] : incoming) {
            std::printf("  referenced by %s (%s)\n", who.c_str(),
                        how.c_str());
          }
        }
      } else if (cmd.rfind("forms ", 0) == 0) {
        // Forms need a fact view; use the most recent one.
        if (!sys->context().views.empty()) {
          sys->BuildBeliefsFromView(
                 sys->context().views.rbegin()->first)
              .ok();
        }
        auto forms = sys->SuggestQueries(cmd.substr(6));
        if (forms.empty()) {
          std::printf("  (no candidate translations)\n");
        }
        for (const auto& form : forms) {
          std::printf("  [%.2f] %s\n", form.score,
                      form.description.c_str());
        }
      } else {
        std::printf("unknown command; \\help for help\n");
      }
      std::printf("sdl> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line + "\n";
    if (buffer.find(';') == std::string::npos) {
      std::printf("...> ");
      std::fflush(stdout);
      continue;
    }
    auto results = sys->RunProgram(buffer);
    buffer.clear();
    if (!results.ok()) {
      std::printf("error: %s\n", results.status().ToString().c_str());
    } else {
      for (const auto& r : *results) {
        if (r.has_relation) {
          std::printf("%s", r.relation.ToString().c_str());
        }
        std::printf("%s\n", r.text.c_str());
      }
    }
    std::printf("sdl> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
