// Quickstart: the paper's motivating scenario end to end.
//
// Section 2 of the paper: "With keyword search we cannot ask and obtain
// answers to questions such as 'find the average March-September
// temperature in Madison, Wisconsin', even though the monthly temperatures
// appear on the Madison page."
//
// This example builds a wiki-style corpus, runs the declarative
// IE pipeline, and answers exactly that question — first showing what
// keyword search alone can (and cannot) do, then the structured path.

#include <cstdio>

#include "core/system.h"
#include "corpus/generator.h"

using structura::core::System;

int main() {
  // 1. A synthetic Wikipedia: city/person/company pages with infoboxes.
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 40;
  corpus_options.num_people = 60;
  corpus_options.num_companies = 10;
  corpus_options.infobox_dropout = 0.25;  // some temps live only in prose
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);
  std::printf("corpus: %zu documents, %zu planted facts\n\n", docs.size(),
              truth.facts.size());

  // 2. Boot the system and ingest the crawl.
  System::Options options;
  auto sys_or = System::Create(options);
  if (!sys_or.ok()) {
    std::fprintf(stderr, "create: %s\n", sys_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<System> sys = std::move(sys_or).value();
  sys->RegisterStandardOperators();
  if (auto s = sys->IngestCrawl(docs); !s.ok()) {
    std::fprintf(stderr, "ingest: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. What keyword search gives you: the right page, not the answer.
  std::printf("== keyword search: \"average temperature Madison\" ==\n");
  for (const auto& hit :
       sys->KeywordSearch("average temperature Madison", 3)) {
    std::printf("  %-28s score=%.2f\n", hit.title.c_str(), hit.score);
  }
  std::printf("  (a ranked list of pages; no way to average anything)\n\n");

  // 4. The structured path: a declarative SDL program.
  const char* program = R"(
    CREATE VIEW city_facts AS
      EXTRACT infobox, temp_sentence FROM pages
      WHERE category = "City" AND attribute LIKE "temp_%";
    SELECT subject, AVG(value) AS avg_temp FROM city_facts
      WHERE subject = "Madison"
        AND attribute >= "temp_03" AND attribute <= "temp_09"
      GROUP BY subject;
  )";
  auto results = sys->RunProgram(program);
  if (!results.ok()) {
    std::fprintf(stderr, "sdl: %s\n", results.status().ToString().c_str());
    return 1;
  }
  std::printf("== SDL: average March-September temperature in Madison ==\n");
  for (const auto& r : *results) {
    if (r.has_relation) std::printf("%s\n", r.relation.ToString().c_str());
  }

  // Ground truth for comparison.
  const structura::corpus::CityRecord* madison = truth.FindCity("Madison");
  if (madison != nullptr) {
    double sum = 0;
    for (int m = 2; m <= 8; ++m) sum += madison->temps[m];
    std::printf("ground truth: %.2f\n\n", sum / 7.0);
  }

  // 5. Ordinary users don't write SDL: keyword -> structured forms.
  if (auto s = sys->BuildBeliefsFromView("city_facts"); !s.ok()) {
    std::fprintf(stderr, "beliefs: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf(
      "== suggested structured queries for \"average march september "
      "temperature madison\" ==\n");
  auto forms =
      sys->SuggestQueries("average march september temperature madison");
  for (const auto& form : forms) {
    std::printf("  [%.2f] %s\n", form.score, form.description.c_str());
  }
  if (!forms.empty()) {
    auto answer = sys->RunForm(forms.front());
    if (answer.ok()) {
      std::printf("\nrunning the top form:\n%s\n",
                  answer->ToString().c_str());
    }
  }

  // 6. Provenance: why does the system believe Madison's March temp?
  auto why = sys->Explain("Madison", "temp_03");
  if (why.ok()) {
    std::printf("== provenance of Madison.temp_03 ==\n%s\n", why->c_str());
  }
  return 0;
}
