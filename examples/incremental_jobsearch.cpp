// Incremental, best-effort generation: the paper's job-seeker scenario
// (Section 3.2). "A user looking for a new job may start out extracting
// only monthly temperatures from Wikipedia ... Later if the user wants
// to examine only cities with at least 500,000 people, then he or she
// may want to also extract city populations, and so on."
//
// Each stage extracts only what the current question needs; the derived
// schema evolves (Part IV), and the final stage joins both fact families.

#include <cstdio>

#include "core/system.h"
#include "corpus/generator.h"
#include "query/relation.h"
#include "schema/evolution.h"

using structura::core::System;

int main() {
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 60;
  corpus_options.num_people = 60;
  corpus_options.num_companies = 10;
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);

  auto sys = std::move(System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(docs).ok();

  structura::schema::EvolvingSchema derived("city_profile");

  // ---- Stage 1: only temperatures (cheap, answers today's question).
  sys->RunProgram(
         "CREATE VIEW temps AS EXTRACT infobox, temp_sentence FROM pages "
         "WHERE category = \"City\" AND attribute LIKE \"temp_%\";")
      .value();
  size_t stage1_runs = sys->context().extractor_runs;
  derived.AddAttribute("avg_summer_temp", structura::rdbms::ValueType::kDouble,
                       "job search: compare summer climates")
      .value();
  std::printf("stage 1 (temps only): %zu extractor runs, schema v%u\n",
              stage1_runs, derived.current_version());

  auto warm = sys->Query(
      "SELECT subject, AVG(value) AS avg_summer FROM temps "
      "WHERE attribute >= \"temp_06\" AND attribute <= \"temp_08\" "
      "GROUP BY subject ORDER BY avg_summer DESC LIMIT 5;");
  std::printf("\nwarmest summers:\n%s\n", warm->ToString().c_str());

  // ---- Stage 2: the user now also cares about city size. Extract
  // populations only — the temperatures are already materialized.
  sys->RunProgram(
         "CREATE VIEW pops AS EXTRACT infobox, population_sentence "
         "FROM pages WHERE category = \"City\" "
         "AND attribute = \"population\";")
      .value();
  size_t stage2_runs = sys->context().extractor_runs - stage1_runs;
  derived.AddAttribute("population", structura::rdbms::ValueType::kInt,
                       "job search: only large cities")
      .value();
  std::printf("stage 2 (+populations): %zu extractor runs, schema v%u\n",
              stage2_runs, derived.current_version());

  // ---- Exploitation across both stages: warm AND large.
  auto pops = sys->View("pops");
  auto temps = sys->View("temps");
  auto avg_temps = structura::query::Aggregate(
      *temps, {"subject"},
      {structura::query::AggSpec{structura::query::AggFn::kAvg, "value",
                                 "avg_temp"}});
  auto big = structura::query::Filter(
      *pops,
      {structura::query::Condition{
          "value", structura::query::CompareOp::kGt,
          structura::query::Value::Int(500000)}});
  auto joined = structura::query::HashJoin(*avg_temps, *big, "subject",
                                           "subject");
  auto tidy = structura::query::Distinct(*structura::query::Project(
      *joined, {"subject", "avg_temp", "value"}));
  auto final_answer =
      structura::query::OrderBy(tidy, "avg_temp", /*descending=*/true);
  std::printf("\nwarm cities with population > 500,000:\n%s\n",
              structura::query::Limit(*final_answer, 5).ToString().c_str());

  // ---- Schema history: the audit trail of the evolving structure.
  std::printf("schema history of '%s':\n", derived.name().c_str());
  for (const auto& change : derived.history()) {
    std::printf("  v%u: +%s (%s)\n", change.version,
                change.attribute.c_str(), change.reason.c_str());
  }

  std::printf(
      "\ncost note: one-shot full-schema extraction would have run "
      "all 7 extractors over all %zu pages; the two stages above ran "
      "targeted subsets (%zu + %zu runs).\n",
      docs.size(), stage1_runs, stage2_runs);
  return 0;
}
