// Semantic heterogeneity across sources — the paper's own example:
// "attributes location and address extracted from two Wikipedia
// infoboxes may in fact match" (Section 3.2). Half of this corpus's
// city pages come from a second community that writes
// inhabitants/location/altitude instead of population/state/elevation.
// Schema matching (names + value distributions) reunifies the
// vocabulary, after which aggregate queries see one coherent schema.

#include <cstdio>

#include "core/system.h"
#include "corpus/generator.h"

using structura::core::System;

int main() {
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 40;
  corpus_options.num_people = 20;
  corpus_options.num_companies = 5;
  corpus_options.infobox_dropout = 0;
  corpus_options.attribute_missing = 0;
  corpus_options.alt_schema_fraction = 0.5;  // the second source
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);

  auto sys = std::move(System::Create({})).value();
  sys->RegisterStandardOperators();
  sys->IngestCrawl(docs).ok();
  sys->RunProgram(
         "CREATE VIEW facts AS EXTRACT infobox FROM pages "
         "WHERE category = \"City\";")
      .value();

  auto count_attr = [&](const char* attr) {
    auto rel = sys->Query(
        std::string("SELECT COUNT(*) AS n FROM facts WHERE attribute = "
                    "\"") +
        attr + "\";");
    return rel.ok() && rel->size() == 1 ? rel->At(0, "n").as_int() : 0;
  };

  std::printf("before unification:\n");
  std::printf("  population=%lld  inhabitants=%lld\n",
              (long long)count_attr("population"),
              (long long)count_attr("inhabitants"));
  std::printf("  state=%lld       location=%lld\n",
              (long long)count_attr("state"),
              (long long)count_attr("location"));

  // An aggregate over "population" silently misses half the cities...
  auto partial = sys->Query(
      "SELECT COUNT(*) AS cities_with_population FROM facts "
      "WHERE attribute = \"population\";");
  std::printf("\naggregate sees only %lld of %zu cities\n",
              (long long)partial->At(0, "cities_with_population").as_int(),
              truth.cities.size());

  // Schema matching: names + instance distributions, with the paper's
  // location/address-style synonym knowledge.
  structura::ii::SchemaMatchOptions options;
  options.threshold = 0.45;
  options.synonyms = {{"inhabitants", "population"},
                      {"location", "state"},
                      {"altitude", "elevation"}};
  auto renames = sys->UnifyViewSchema(
      "facts", {"population", "state", "elevation", "founded", "mayor"},
      options);
  if (!renames.ok()) {
    std::fprintf(stderr, "%s\n", renames.status().ToString().c_str());
    return 1;
  }
  std::printf("\nschema matcher decided:\n");
  for (const auto& [from, to] : *renames) {
    std::printf("  %-12s -> %s\n", from.c_str(), to.c_str());
  }

  std::printf("\nafter unification:\n");
  std::printf("  population=%lld  inhabitants=%lld\n",
              (long long)count_attr("population"),
              (long long)count_attr("inhabitants"));
  auto full = sys->Query(
      "SELECT COUNT(*) AS cities_with_population FROM facts "
      "WHERE attribute = \"population\";");
  std::printf("aggregate now sees %lld of %zu cities\n",
              (long long)full->At(0, "cities_with_population").as_int(),
              truth.cities.size());
  return 0;
}
