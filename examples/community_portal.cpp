// Community portal: the mass-collaboration story of Sections 3.2 and 5.
//
// A community runs a portal over a noisy wiki slice. Automatic IE gets
// most facts right but free-text typos and dropped infobox entries leave
// errors. Ordinary users log in, answer small verification tasks, earn
// points, and build reputation; their aggregated feedback repairs the
// derived structure round by round.

#include <cstdio>

#include "core/eval.h"
#include "core/system.h"
#include "corpus/generator.h"
#include "hi/simulated_user.h"

using structura::core::ScoreBeliefs;
using structura::core::System;

int main() {
  // A noisy corpus: many values live only in (typo-prone) free text.
  structura::corpus::CorpusOptions corpus_options;
  corpus_options.num_cities = 30;
  corpus_options.num_people = 50;
  corpus_options.num_companies = 10;
  corpus_options.infobox_dropout = 0.5;
  corpus_options.typo_prob = 0.25;
  structura::text::DocumentCollection docs;
  structura::corpus::GroundTruth truth;
  structura::corpus::GenerateCorpus(corpus_options, &docs, &truth);

  auto sys = std::move(System::Create({})).value();
  sys->RegisterStandardOperators();
  if (!sys->IngestCrawl(docs).ok()) return 1;

  auto program_result = sys->RunProgram(
      "CREATE VIEW facts AS EXTRACT infobox, temp_sentence, "
      "population_sentence, founded_sentence, elevation_sentence "
      "FROM pages;");
  if (!program_result.ok()) {
    std::fprintf(stderr, "%s\n", program_result.status().ToString().c_str());
    return 1;
  }
  if (!sys->BuildBeliefsFromView("facts").ok()) return 1;

  // Simulated community: members with varying reliability, including a
  // careless tail.
  auto crowd = structura::hi::MakeCrowd(12, 0.65, 0.95, 2024);
  // The oracle stands in for what each member actually knows about
  // their town (see DESIGN.md, substitution table).
  System::Oracle oracle = [&truth](const std::string& subject,
                                   const std::string& attribute)
      -> std::optional<std::string> {
    for (const auto& f : truth.facts) {
      auto it = truth.canonical_names.find(f.entity);
      if (it != truth.canonical_names.end() && it->second == subject &&
          f.attribute == attribute) {
        return f.value;
      }
    }
    return std::nullopt;
  };

  std::printf("round  tasks  belief_F1\n");
  std::printf("    0      0      %.3f\n",
              ScoreBeliefs(sys->beliefs(), truth).f1());
  for (int round = 1; round <= 4; ++round) {
    System::FeedbackOptions options;
    options.budget = 60;
    options.answers_per_task = 5;
    options.aggregation = round < 3 ? System::Aggregation::kMajority
                                    : System::Aggregation::kWeighted;
    auto asked = sys->RunFeedbackRound(oracle, &crowd, options);
    if (!asked.ok()) {
      std::fprintf(stderr, "%s\n", asked.status().ToString().c_str());
      return 1;
    }
    std::printf("    %d     %2zu      %.3f   (%s)\n", round, *asked,
                ScoreBeliefs(sys->beliefs(), truth).f1(),
                round < 3 ? "majority" : "reputation-weighted");
  }

  // The incentive side of the user layer: the leaderboard.
  std::printf("\n== contributor leaderboard ==\n");
  int rank = 1;
  for (const auto& user : sys->users().Leaderboard()) {
    if (rank > 5) break;
    std::printf("%d. %-10s points=%-4lld reputation=%.2f answers=%zu\n",
                rank++, user.name.c_str(),
                static_cast<long long>(user.points), user.reputation,
                user.feedback_count);
  }

  // Persist the curated structure into the transactional final store.
  if (!sys->MaterializeBeliefs("portal_facts").ok()) return 1;
  auto txn = sys->database()->Begin();
  auto rows = txn->Scan("portal_facts");
  std::printf("\nmaterialized %zu curated tuples into 'portal_facts'\n",
              rows.ok() ? rows->size() : 0);
  txn->Commit();

  std::printf("system monitor: %s\n", sys->monitor().Report().c_str());
  return 0;
}
